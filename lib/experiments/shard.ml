module Json = Lrd_obs.Json
module Obs = Lrd_obs.Obs

type spec = { index : int; count : int }

let spec_string s = Printf.sprintf "%d/%d" s.index s.count

let parse_spec s =
  let fail () =
    Error
      (Printf.sprintf "expected K/N with 1 <= K <= N (e.g. 2/4), got %S" s)
  in
  match String.index_opt s '/' with
  | None -> fail ()
  | Some i -> (
      let k = String.sub s 0 i
      and n = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt k, int_of_string_opt n) with
      | Some index, Some count when 1 <= index && index <= count ->
          Ok { index; count }
      | _ -> fail ())

(* A recorded surface: only the owned rows in [Compute] mode, every row
   after a merge.  Rows are kept sorted by [iy]. *)
type grid = { nx : int; ny : int; rows : (int * Lrd_core.Solver.result array) list }

type mode =
  | Compute of { spec : spec; mutable recorded : grid list (* reversed *) }
  | Replay of { mutable pending : grid list }

type t = { mode : mode }

let compute spec = { mode = Compute { spec; recorded = [] } }
let spec t = match t.mode with Compute c -> Some c.spec | Replay _ -> None
let is_replay t = match t.mode with Replay _ -> true | Compute _ -> false

let row_owner ~count iy = (iy mod count) + 1

let owns_row t ~iy =
  match t.mode with
  | Replay _ -> true
  | Compute c -> row_owner ~count:c.spec.count iy = c.spec.index

let absent_result =
  {
    Lrd_core.Solver.loss = Float.nan;
    lower_bound = Float.nan;
    upper_bound = Float.nan;
    iterations = 0;
    bins = 0;
    refinements = 0;
    converged = false;
  }

let record_grid t ~nx ~ny results =
  match t.mode with
  | Replay _ -> ()
  | Compute c ->
      let rows = ref [] in
      for iy = ny - 1 downto 0 do
        if row_owner ~count:c.spec.count iy = c.spec.index then
          rows := (iy, Array.copy results.(iy)) :: !rows
      done;
      c.recorded <- { nx; ny; rows = !rows } :: c.recorded

let replay_grid t ~nx ~ny =
  match t.mode with
  | Compute _ -> failwith "Shard.replay_grid: handle is in compute mode"
  | Replay r -> (
      match r.pending with
      | [] -> failwith "Shard.replay_grid: merged store exhausted"
      | g :: rest ->
          if g.nx <> nx || g.ny <> ny then
            failwith
              (Printf.sprintf
                 "Shard.replay_grid: stored grid is %dx%d, figure asked for \
                  %dx%d"
                 g.nx g.ny nx ny);
          r.pending <- rest;
          Array.init ny (fun iy ->
              match List.assoc_opt iy g.rows with
              | Some cells -> Array.copy cells
              | None -> failwith "Shard.replay_grid: merged grid missing a row"))

let grid_cells g = List.length g.rows * g.nx

let cell_count t =
  let grids =
    match t.mode with Compute c -> c.recorded | Replay r -> r.pending
  in
  List.fold_left (fun acc g -> acc + grid_cells g) 0 grids

(* ------------------------------------------------------------------ *)
(* Provenance digest *)

let digest ~figure fields =
  (* "jobs" never changes a figure value (the pool determinism
     contract), so shards may run at different parallelism; everything
     else — seed, quick, policy, solver parameters, grids — must match
     bit for bit before a merge is allowed. *)
  let fields = List.filter (fun (k, _) -> k <> "jobs") fields in
  Digest.to_hex
    (Digest.string (figure ^ "\x00" ^ Json.to_string (Json.Obj fields)))

(* ------------------------------------------------------------------ *)
(* File layout *)

let cells_schema = "lrd-shard-cells/1"
let stem s = Printf.sprintf "shard-%d-of-%d" s.index s.count
let cells_path ~dir s = Filename.concat dir (stem s ^ ".cells.json")
let manifest_path ~dir s = Filename.concat dir (stem s ^ ".manifest.json")
let metrics_path ~dir s = Filename.concat dir (stem s ^ ".metrics.json")
let results_path ~dir s = Filename.concat dir (stem s ^ ".results.txt")
let log_path ~dir s = Filename.concat dir (stem s ^ ".log")
let merged_results_path ~dir = Filename.concat dir "merged.results.txt"
let merged_metrics_path ~dir = Filename.concat dir "merged.metrics.json"

(* ------------------------------------------------------------------ *)
(* Serialization.  Floats are written as "%h" hex literals: the merge
   must reproduce the whole run bit for bit, and hex round-trips every
   finite double exactly (nan/infinity print and parse as such). *)

let hex f = Printf.sprintf "%h" f
let inum i = Json.Num (float_of_int i)

let result_to_json (r : Lrd_core.Solver.result) =
  Json.Obj
    [
      ("loss", Json.Str (hex r.loss));
      ("lower_bound", Str (hex r.lower_bound));
      ("upper_bound", Str (hex r.upper_bound));
      ("iterations", inum r.iterations);
      ("bins", inum r.bins);
      ("refinements", inum r.refinements);
      ("converged", Bool r.converged);
    ]

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let int_member key v =
  match Json.member key v with
  | Some (Json.Num f) when Float.is_integer f -> int_of_float f
  | _ -> bad "missing or non-integer %S field" key

let str_member key v =
  match Json.member key v with
  | Some (Json.Str s) -> s
  | _ -> bad "missing or non-string %S field" key

let hex_member key v =
  let s = str_member key v in
  match float_of_string_opt s with
  | Some f -> f
  | None -> bad "field %S is not a float literal: %S" key s

let bool_member key v =
  match Json.member key v with
  | Some (Json.Bool b) -> b
  | _ -> bad "missing or non-boolean %S field" key

let list_member key v =
  match Json.member key v with
  | Some (Json.List l) -> l
  | _ -> bad "missing or non-array %S field" key

let result_of_json v =
  {
    Lrd_core.Solver.loss = hex_member "loss" v;
    lower_bound = hex_member "lower_bound" v;
    upper_bound = hex_member "upper_bound" v;
    iterations = int_member "iterations" v;
    bins = int_member "bins" v;
    refinements = int_member "refinements" v;
    converged = bool_member "converged" v;
  }

let grid_to_json g =
  Json.Obj
    [
      ("nx", inum g.nx);
      ("ny", inum g.ny);
      ( "rows",
        List
          (List.map
             (fun (iy, cells) ->
               Json.Obj
                 [
                   ("iy", inum iy);
                   ( "cells",
                     List
                       (Array.to_list (Array.map result_to_json cells)) );
                 ])
             g.rows) );
    ]

let grid_of_json v =
  let nx = int_member "nx" v and ny = int_member "ny" v in
  if nx < 1 || ny < 1 then bad "grid shape %dx%d is not positive" nx ny;
  let rows =
    List.map
      (fun rv ->
        let iy = int_member "iy" rv in
        if iy < 0 || iy >= ny then bad "row index %d outside 0..%d" iy (ny - 1);
        let cells =
          Array.of_list (List.map result_of_json (list_member "cells" rv))
        in
        if Array.length cells <> nx then
          bad "row %d has %d cells, grid is %d wide" iy (Array.length cells)
            nx;
        (iy, cells))
      (list_member "rows" v)
  in
  { nx; ny; rows }

let recorded_grids t =
  match t.mode with
  | Compute c -> List.rev c.recorded
  | Replay r -> r.pending

let cells_json t ~figure ~digest =
  let s =
    match spec t with
    | Some s -> s
    | None -> invalid_arg "Shard.cells_json: handle is in replay mode"
  in
  Json.Obj
    [
      ("schema", Json.Str cells_schema);
      ("figure", Str figure);
      ("index", inum s.index);
      ("count", inum s.count);
      ("params_digest", Str digest);
      ("grids", List (List.map grid_to_json (recorded_grids t)));
    ]

let write_cells t ~dir ~figure ~digest =
  let s = Option.get (spec t) in
  Json.to_file ~pretty:true (cells_path ~dir s) (cells_json t ~figure ~digest)

let shard_section t ~figure ~digest =
  let s =
    match spec t with
    | Some s -> s
    | None -> invalid_arg "Shard.shard_section: handle is in replay mode"
  in
  [
    ( "shard",
      Json.Obj
        [
          ("figure", Json.Str figure);
          ("index", inum s.index);
          ("count", inum s.count);
          ("params_digest", Str digest);
          ("cells", inum (cell_count t));
          ( "grids",
            List
              (List.map
                 (fun g -> Json.Obj [ ("nx", inum g.nx); ("ny", inum g.ny) ])
                 (recorded_grids t)) );
        ] );
  ]

(* ------------------------------------------------------------------ *)
(* Merge *)

let parse_one ~figure ~digest v =
  (match Json.member "schema" v with
  | Some (Json.Str s) when s = cells_schema -> ()
  | Some (Json.Str s) -> bad "unknown shard cells schema %S" s
  | _ -> bad "missing schema tag");
  let fig = str_member "figure" v in
  if fig <> figure then bad "shard is for figure %S, merging %S" fig figure;
  let d = str_member "params_digest" v in
  if d <> digest then
    bad
      "parameter digest mismatch: shard has %s, this run has %s (same seed, \
       quick flag, gap policy and solver parameters are required)"
      d digest;
  let index = int_member "index" v and count = int_member "count" v in
  if not (1 <= index && index <= count) then
    bad "invalid shard index %d of %d" index count;
  let spec = { index; count } in
  let grids = List.map grid_of_json (list_member "grids" v) in
  List.iter
    (fun g ->
      List.iter
        (fun (iy, _) ->
          if row_owner ~count iy <> index then
            bad "shard %s carries row %d, owned by shard %d"
              (spec_string spec) iy (row_owner ~count iy))
        g.rows)
    grids;
  (spec, grids)

let of_cells_json ~figure ~digest values =
  try
    let shards = List.map (parse_one ~figure ~digest) values in
    (match shards with
    | [] -> bad "no shard cells files to merge"
    | ({ count; _ }, _) :: rest ->
        List.iter
          (fun (s, _) ->
            if s.count <> count then
              bad "mixed shard counts: %d and %d" count s.count)
          rest;
        let seen = Array.make (count + 1) false in
        List.iter
          (fun (s, _) ->
            if seen.(s.index) then bad "duplicate shard %s" (spec_string s);
            seen.(s.index) <- true)
          shards;
        for k = 1 to count do
          if not seen.(k) then bad "missing shard %d/%d" k count
        done);
    let count = (fst (List.hd shards)).count in
    let ngrids = List.length (snd (List.hd shards)) in
    List.iter
      (fun (s, gs) ->
        if List.length gs <> ngrids then
          bad "shard %s recorded %d grids, expected %d" (spec_string s)
            (List.length gs) ngrids)
      shards;
    let by_index = Array.make (count + 1) [] in
    List.iter (fun (s, gs) -> by_index.(s.index) <- gs) shards;
    let merged =
      List.init ngrids (fun g ->
          let shape = List.nth by_index.(1) g in
          List.iter
            (fun (s, gs) ->
              let gg = List.nth gs g in
              if gg.nx <> shape.nx || gg.ny <> shape.ny then
                bad "shard %s grid %d is %dx%d, shard 1's is %dx%d"
                  (spec_string s) g gg.nx gg.ny shape.nx shape.ny)
            shards;
          let rows =
            List.init shape.ny (fun iy ->
                let owner = row_owner ~count iy in
                match List.assoc_opt iy (List.nth by_index.(owner) g).rows with
                | Some cells -> (iy, cells)
                | None ->
                    bad "shard %d/%d is missing its row %d of grid %d" owner
                      count iy g)
          in
          { nx = shape.nx; ny = shape.ny; rows })
    in
    let per_shard =
      List.map
        (fun (s, gs) ->
          (s, List.fold_left (fun acc g -> acc + grid_cells g) 0 gs))
        shards
    in
    let per_shard =
      List.sort (fun (a, _) (b, _) -> compare a.index b.index) per_shard
    in
    Ok ({ mode = Replay { pending = merged } }, per_shard)
  with Bad msg -> Error msg

let shard_cells_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.to_list entries
      |> List.filter (fun name ->
             String.length name > 17
             && String.sub name 0 6 = "shard-"
             && Filename.check_suffix name ".cells.json")
      |> List.map (Filename.concat dir)
  | exception Sys_error msg -> failwith msg

let load ~dir ~figure ~digest =
  match shard_cells_files dir with
  | exception Failure msg -> Error msg
  | [] -> Error (Printf.sprintf "no shard-*.cells.json files in %s" dir)
  | files -> (
      let parsed =
        List.map
          (fun path ->
            match Json.of_file path with
            | Ok v -> Ok v
            | Error e -> Error (Printf.sprintf "%s: %s" path e))
          files
      in
      match
        List.find_map (function Error e -> Some e | Ok _ -> None) parsed
      with
      | Some e -> Error e
      | None ->
          of_cells_json ~figure ~digest
            (List.map (function Ok v -> v | Error _ -> assert false) parsed))

let checkpoint ~dir ~figure ~digest s =
  let cells_ok =
    match Json.of_file (cells_path ~dir s) with
    | Error _ -> None
    | Ok v -> (
        match parse_one ~figure ~digest v with
        | spec, grids when spec = s ->
            Some (List.fold_left (fun acc g -> acc + grid_cells g) 0 grids)
        | _ -> None
        | exception Bad _ -> None)
  in
  match cells_ok with
  | None -> None
  | Some cells -> (
      (* The manifest is the checkpoint's seal: same schema discipline
         as [lrd metrics diff] — wrong or missing tags invalidate it. *)
      match Json.of_file (manifest_path ~dir s) with
      | Error _ -> None
      | Ok m -> (
          match (Json.member "schema" m, Json.member "shard" m) with
          | Some (Json.Str tag), Some sh
            when tag = Lrd_obs.Manifest.shard_schema -> (
              match
                ( Json.member "params_digest" sh,
                  Json.member "index" sh,
                  Json.member "count" sh )
              with
              | Some (Json.Str d), Some (Json.Num i), Some (Json.Num n)
                when d = digest
                     && int_of_float i = s.index
                     && int_of_float n = s.count ->
                  Some cells
              | _ -> None)
          | _ -> None))

(* ------------------------------------------------------------------ *)
(* Merged metrics *)

let write_merged_metrics ~dir per_shard =
  try
    let totals = Hashtbl.create 64 in
    List.iter
      (fun (s, _) ->
        let path = metrics_path ~dir s in
        match Json.of_file path with
        | Error e -> bad "%s: %s" path e
        | Ok v ->
            let entries =
              match Json.member "metrics" v with
              | Some (Json.List l) -> l
              | _ -> bad "%s: not a metrics snapshot" path
            in
            List.iter
              (fun e ->
                match (Json.member "name" e, Json.member "kind" e) with
                | Some (Json.Str name), Some (Json.Str "counter") -> (
                    match
                      Option.bind (Json.member "total" e) Json.to_float_opt
                    with
                    | Some total ->
                        let prev =
                          Option.value ~default:0.0
                            (Hashtbl.find_opt totals name)
                        in
                        Hashtbl.replace totals name (prev +. total)
                    | None -> ())
                | _ -> ())
              entries)
      per_shard;
    let names =
      List.sort String.compare
        (Hashtbl.fold (fun name _ acc -> name :: acc) totals [])
    in
    let entries =
      List.map
        (fun name ->
          Json.Obj
            [
              ("name", Json.Str name);
              ("kind", Str "counter");
              ("total", Num (Hashtbl.find totals name));
            ])
        names
    in
    Json.to_file ~pretty:true
      (merged_metrics_path ~dir)
      (Json.Obj [ ("metrics", Json.List entries) ]);
    Ok ()
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Driver *)

let m_cells_total = Obs.Counter.make "shard/cells_total"
let m_cells_run = Obs.Counter.make "shard/cells_run"
let m_cells_skipped = Obs.Counter.make "shard/cells_skipped"
let m_shards_spawned = Obs.Counter.make "shard/shards_spawned"
let m_retries = Obs.Counter.make "shard/shard_retries"

let record_counters ~per_shard ~skipped =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 per_shard in
  let skipped_cells =
    List.fold_left
      (fun acc (s, c) -> if List.mem s skipped then acc + c else acc)
      0 per_shard
  in
  Obs.Counter.add m_cells_total total;
  Obs.Counter.add m_cells_skipped skipped_cells;
  Obs.Counter.add m_cells_run (total - skipped_cells)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let drive ?heartbeat ~dir ~figure ~digest ~count ~resume ~retries ~worker_argv
    () =
  ensure_dir dir;
  let t_start = Unix.gettimeofday () in
  (* Every driver line carries elapsed seconds (monotonic within the
     run) and the shard it concerns, so interleaved worker logs stay
     attributable when several shards fail or retry at once. *)
  let logf shard fmt =
    Printf.ksprintf
      (fun msg ->
        let who =
          match shard with
          | Some s -> Printf.sprintf "shard %d/%d" s.index s.count
          | None -> "driver"
        in
        Printf.eprintf "[+%.3fs %s] %s\n%!"
          (Unix.gettimeofday () -. t_start)
          who msg)
      fmt
  in
  let skipped = ref [] and to_run = ref [] in
  for index = count downto 1 do
    let s = { index; count } in
    if resume && checkpoint ~dir ~figure ~digest s <> None then
      skipped := s :: !skipped
    else to_run := s :: !to_run
  done;
  List.iter
    (fun s -> logf (Some s) "resume: checkpoint matches, not spawning")
    !skipped;
  let attempts = Array.make (count + 1) 0 in
  let spawn s =
    let log =
      Unix.openfile (log_path ~dir s)
        [ Unix.O_WRONLY; O_CREAT; O_TRUNC ]
        0o644
    in
    let argv = Array.of_list (Sys.executable_name :: worker_argv s) in
    let pid = Unix.create_process Sys.executable_name argv Unix.stdin log log in
    Unix.close log;
    Obs.Counter.incr m_shards_spawned;
    logf (Some s) "spawned pid %d (attempt %d, log %s)" pid
      (attempts.(s.index) + 1)
      (log_path ~dir s);
    pid
  in
  let running = Hashtbl.create 8 in
  let failures = ref [] in
  List.iter (fun s -> Hashtbl.replace running (spawn s) s) !to_run;
  let next_beat =
    ref (match heartbeat with Some h -> t_start +. h | None -> infinity)
  in
  (* Non-blocking reap loop: WNOHANG polling (50 ms) instead of a
     blocking wait, so the driver can emit per-shard heartbeat lines on
     the side while workers run. *)
  while Hashtbl.length running > 0 do
    let reaped = ref false in
    let handle pid status s =
      Hashtbl.remove running pid;
      reaped := true;
      match status with
      | Unix.WEXITED 0 -> logf (Some s) "completed (pid %d)" pid
      | st ->
          if attempts.(s.index) < retries then begin
            attempts.(s.index) <- attempts.(s.index) + 1;
            Obs.Counter.incr m_retries;
            logf (Some s) "pid %d %s, retrying (attempt %d of %d)" pid
              (status_string st)
              (attempts.(s.index) + 1)
              (retries + 1);
            Hashtbl.replace running (spawn s) s
          end
          else begin
            logf (Some s) "pid %d %s, giving up after %d attempt(s)" pid
              (status_string st)
              (attempts.(s.index) + 1);
            failures := (s, st) :: !failures
          end
    in
    let pids = Hashtbl.fold (fun pid s acc -> (pid, s) :: acc) running [] in
    List.iter
      (fun (pid, s) ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            (* Reaped elsewhere (should not happen): treat as success so
               the checkpoint validation in the merge decides. *)
            Hashtbl.remove running pid;
            reaped := true
        | _, status -> handle pid status s)
      pids;
    if Hashtbl.length running > 0 then begin
      if not !reaped then Unix.sleepf 0.05;
      if Unix.gettimeofday () >= !next_beat then begin
        Hashtbl.fold (fun pid s acc -> (pid, s) :: acc) running []
        |> List.sort (fun (_, a) (_, b) -> compare a.index b.index)
        |> List.iter (fun (pid, s) ->
               logf (Some s) "heartbeat: running (pid %d, attempt %d)" pid
                 (attempts.(s.index) + 1));
        match heartbeat with
        | Some h -> next_beat := !next_beat +. h
        | None -> ()
      end
    end
  done;
  match !failures with
  | [] -> Ok !skipped
  | fs ->
      Error
        (String.concat "; "
           (List.map
              (fun (s, st) ->
                Printf.sprintf "shard %s %s after %d attempt(s) (see %s)"
                  (spec_string s) (status_string st)
                  (attempts.(s.index) + 1)
                  (log_path ~dir s))
              (List.rev fs)))
