type t = {
  quick : bool;
  seed : int64;
  jobs : int;
  gap_policy : Sweep.gap_policy;
  superpose : Lrd_core.Superpose.method_;
  shard : Shard.t option;
  pool : Lrd_parallel.Pool.t option;
  lock : Mutex.t;
      (* [Lazy.force] is not domain-safe (a second forcer raises
         [Lazy.Undefined]), so every lazy below is forced under this
         lock.  Cell functions running on the pool may therefore share
         the context as long as they only read through the accessors. *)
  mtv : Lrd_trace.Trace.t Lazy.t;
  bellcore : Lrd_trace.Trace.t Lazy.t;
  mtv_marginal : Lrd_dist.Marginal.t Lazy.t;
  bc_marginal : Lrd_dist.Marginal.t Lazy.t;
  mtv_mean_epoch : float Lazy.t;
  bc_mean_epoch : float Lazy.t;
}

let mtv_hurst = 0.83
let bc_hurst = 0.9
let mtv_utilization = 0.8
let bc_utilization = 0.4

let pool_of_jobs jobs =
  match jobs with
  | None -> None
  | Some j ->
      if j < 0 then
        invalid_arg
          (Printf.sprintf "Data.create: jobs must be nonnegative, got %d" j)
      else if j = 0 then Some (Lrd_parallel.Pool.create ())
      else if j = 1 then None
      else Some (Lrd_parallel.Pool.create ~workers:(j - 1) ())

let create ?(seed = 20260705L) ?jobs ?(gap_policy = Sweep.uniform_policy)
    ?(superpose = Lrd_core.Superpose.Auto) ?shard ~quick () =
  let pool = pool_of_jobs jobs in
  let rng = Lrd_rng.Rng.create ~seed in
  let mtv_rng = Lrd_rng.Rng.split rng in
  let bc_rng = Lrd_rng.Rng.split rng in
  let mtv =
    lazy
      (if quick then Lrd_trace.Video.generate_short mtv_rng ~n:16_384
       else Lrd_trace.Video.generate mtv_rng)
  in
  let bellcore =
    lazy
      (if quick then Lrd_trace.Ethernet.generate_short bc_rng ~n:32_768
       else Lrd_trace.Ethernet.generate bc_rng)
  in
  let marginal trace =
    lazy (Lrd_trace.Histogram.marginal_of_trace ~bins:50 (Lazy.force trace))
  in
  let epoch trace =
    lazy (Lrd_trace.Epochs.mean_epoch_duration ~bins:50 (Lazy.force trace))
  in
  {
    quick;
    seed;
    jobs = (match pool with None -> 1 | Some p -> Lrd_parallel.Pool.parallelism p);
    gap_policy;
    superpose;
    shard;
    pool;
    lock = Mutex.create ();
    mtv;
    bellcore;
    mtv_marginal = marginal mtv;
    bc_marginal = marginal bellcore;
    mtv_mean_epoch = epoch mtv;
    bc_mean_epoch = epoch bellcore;
  }

let quick t = t.quick
let seed t = t.seed
let jobs t = t.jobs
let gap_policy t = t.gap_policy
let superpose_method t = t.superpose
let shard t = t.shard
let pool t = t.pool

let teardown t =
  match t.pool with None -> () | Some p -> Lrd_parallel.Pool.shutdown p

let force t l = Mutex.protect t.lock (fun () -> Lazy.force l)
let mtv t = force t t.mtv
let bellcore t = force t t.bellcore
let mtv_marginal t = force t t.mtv_marginal
let bc_marginal t = force t t.bc_marginal
let mtv_mean_epoch t = force t t.mtv_mean_epoch
let bc_mean_epoch t = force t t.bc_mean_epoch

let theta_for ~mean_epoch ~hurst =
  Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch
    ~alpha:(Lrd_core.Model.alpha_of_hurst hurst)
    ()

let mtv_theta t = theta_for ~mean_epoch:(mtv_mean_epoch t) ~hurst:mtv_hurst
let bc_theta t = theta_for ~mean_epoch:(bc_mean_epoch t) ~hurst:bc_hurst

let mtv_model t ~cutoff =
  Lrd_core.Model.of_hurst ~marginal:(mtv_marginal t) ~hurst:mtv_hurst
    ~theta:(mtv_theta t) ~cutoff

let bc_model t ~cutoff =
  Lrd_core.Model.of_hurst ~marginal:(bc_marginal t) ~hurst:bc_hurst
    ~theta:(bc_theta t) ~cutoff

let solver_params t =
  let d = Lrd_core.Solver.default_params in
  if t.quick then
    {
      d with
      Lrd_core.Solver.max_bins = 4096;
      max_iterations = 40_000;
    }
  else d

let manifest_fields t =
  let open Lrd_obs.Json in
  let p = solver_params t in
  [
    (* The seed prints as a string: an int64 can exceed a JSON-safe
       double and must survive the round-trip exactly. *)
    ("seed", Str (Int64.to_string t.seed));
    ("quick", Bool t.quick);
    ("jobs", Num (float_of_int t.jobs));
    ( "gap_policy",
      Obj
        [
          ( "contrast_decades",
            match t.gap_policy.Sweep.contrast with
            | None -> Null
            | Some (Sweep.Decades d) -> Num d
            | Some Sweep.From_axis -> Str "from-axis" );
          ( "iteration_budget",
            match t.gap_policy.Sweep.iteration_budget with
            | None -> Null
            | Some b -> Num (float_of_int b) );
        ] );
    ( "superpose",
      Str
        (match t.superpose with
        | Lrd_core.Superpose.Exact -> "exact"
        | Lrd_core.Superpose.Edgeworth -> "edgeworth"
        | Lrd_core.Superpose.Auto -> "auto") );
    (* How cell randomness derives from the seed — fixed by the
       determinism contract, recorded so a manifest is self-describing. *)
    ("rng_splits", Str "per-cell Rng.split_indexed on the cell index");
    ( "solver",
      Obj
        [
          ("initial_bins", Num (float_of_int p.Lrd_core.Solver.initial_bins));
          ("max_bins", Num (float_of_int p.Lrd_core.Solver.max_bins));
          ("tolerance", Num p.Lrd_core.Solver.tolerance);
          ("negligible_loss", Num p.Lrd_core.Solver.negligible_loss);
          ( "max_iterations",
            Num (float_of_int p.Lrd_core.Solver.max_iterations) );
          ("check_every", Num (float_of_int p.Lrd_core.Solver.check_every));
          ("stall_factor", Num p.Lrd_core.Solver.stall_factor);
          ("warm_restart", Bool p.Lrd_core.Solver.warm_restart);
          ( "convolution",
            Str
              (match p.Lrd_core.Solver.convolution with
              | `Auto -> "auto"
              | `Fft -> "fft"
              | `Direct -> "direct") );
        ] );
  ]
  @ Sweep.manifest_fields ~quick:t.quick ()
