(** Extension: Fig. 11 pushed to production scale — certified loss vs
    the number of multiplexed sources, N = 10 .. 10^6, for a
    heterogeneous population of heavy-tailed on/off users.

    Aggregate marginals come from the transform-domain superposition
    engine ({!Lrd_core.Superpose}): O(log N) half-spectrum multiplies
    on the exact path, the Edgeworth closed form once the cost model
    flips ([--superpose] picks; default [auto]).  Each aggregate feeds
    the resumable solver states of {!Sweep.scheduled_surface}, so every
    reported loss is a certified interval midpoint, exactly like the
    in-paper figures.  The run output ends with an exact-vs-Edgeworth
    agreement block (mean, std, 3-sigma tail) at a reference N. *)

val id : string
val title : string

val population : n:int -> (Lrd_dist.Marginal.t * int) list
(** The figure's heterogeneous population at total size [n]: three
    on/off classes (light/medium/heavy) apportioned 6:3:1 by largest
    remainder — deterministic, counts sum to [n] exactly.  Exposed for
    the bench harness and tests.
    @raise Invalid_argument when [n < 1]. *)

val marginal_for : ?method_:Lrd_core.Superpose.method_ -> int -> Lrd_dist.Marginal.t
(** Aggregate marginal of {!population} at size [n] via
    {!Lrd_core.Superpose.aggregate}. *)

val compute : Data.t -> Table.surface
val run : Data.t -> Format.formatter -> unit
