(* Extension: Hurst-estimator comparison.  The paper takes its H values
   from "a Whittle or wavelet based estimator"; this table runs all five
   estimators implemented here over controlled inputs (white noise, fGn
   at two H values, the two synthetic traces, and an M/G/inf session
   trace), exposing each estimator's bias on composite processes. *)

let id = "ext-estimators"
let title = "Extension: five Hurst estimators over controlled inputs"

let run ctx fmt =
  let quick = Data.quick ctx in
  let n = if quick then 16_384 else 65_536 in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 41L) in
  let white =
    Array.init n (fun _ -> Lrd_rng.Sampler.normal rng ~mean:0.0 ~std:1.0)
  in
  (* Per-domain plans: bit-identical to [davies_harte] on the same RNG
     stream, but the eigenvalue setup is cached across quick/full reruns
     in one process. *)
  let fgn07 =
    Lrd_trace.Fgn.Plan.generate (Lrd_trace.Fgn.domain_plan ~hurst:0.7 ~n) rng
  in
  let fgn09 =
    Lrd_trace.Fgn.Plan.generate (Lrd_trace.Fgn.domain_plan ~hurst:0.9 ~n) rng
  in
  let mginf =
    (Lrd_trace.Mginf.generate rng ~slots:n ~slot:0.01).Lrd_trace.Trace.rates
  in
  let farima = Lrd_trace.Farima.generate rng ~d:0.3 ~n in
  let inputs =
    [
      ("white (0.5)", white);
      ("fgn (0.7)", fgn07);
      ("fgn (0.9)", fgn09);
      ("farima (0.8)", farima);
      ("video (0.83)", (Data.mtv ctx).Lrd_trace.Trace.rates);
      ("ethernet (0.9)", (Data.bellcore ctx).Lrd_trace.Trace.rates);
      ( Printf.sprintf "mginf (%.2f)"
          (Lrd_trace.Mginf.hurst Lrd_trace.Mginf.default),
        mginf );
    ]
  in
  Table.heading fmt title;
  Format.fprintf fmt "%16s %9s %9s %9s %9s %9s@." "input (nominal H)"
    "agg-var" "R/S" "GPH" "wavelet" "whittle";
  List.iter
    (fun (name, data) ->
      let safe f = try f data with Invalid_argument _ -> Float.nan in
      Format.fprintf fmt "%16s %9.3f %9.3f %9.3f %9.3f %9.3f@." name
        (safe (fun d ->
             (Lrd_stats.Hurst.aggregated_variance d).Lrd_stats.Hurst.hurst))
        (safe (fun d ->
             (Lrd_stats.Hurst.rescaled_range d).Lrd_stats.Hurst.hurst))
        (safe (fun d -> (Lrd_stats.Hurst.gph d).Lrd_stats.Hurst.hurst))
        (safe (fun d ->
             (Lrd_stats.Hurst.abry_veitch d).Lrd_stats.Hurst.hurst))
        (safe (fun d ->
             (* Shared planned workspace: the synthetic inputs all have
                one length and the trace inputs reuse by transform size. *)
             let ws = Lrd_stats.Whittle.domain_workspace ~n:(Array.length d) in
             (Lrd_stats.Whittle.Workspace.local_whittle ws d)
               .Lrd_stats.Whittle.hurst)))
    inputs;
  Format.fprintf fmt
    "(pure fGn is every estimator's home turf; composite processes - \
     scene-based video, on/off aggregates, session traffic - split the \
     estimators, which is why the paper quotes estimator-based H values \
     only to one or two digits)@."
