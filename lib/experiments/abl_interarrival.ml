(* Ablation: interarrival-law sensitivity.  The paper's Section IV
   argues that any model capturing the correlation structure up to the
   correlation horizon predicts the same loss — and that the choice
   among such models can be made on convenience.  Here the same MTV
   marginal and the same mean epoch duration are driven through four
   epoch laws (truncated Pareto at the fitted cutoff, exponential,
   deterministic, uniform) whose correlation all dies within a few mean
   epochs, plus the untruncated Pareto whose correlation extends far
   beyond the horizon. *)

let id = "abl-interarrival"

let title =
  "Ablation: epoch-law choice at matched mean epoch (MTV marginal, \
   utilization 0.8)"

let run ctx fmt =
  let marginal = Data.mtv_marginal ctx in
  let mean_epoch = Data.mtv_mean_epoch ctx in
  let alpha = Lrd_core.Model.alpha_of_hurst Data.mtv_hurst in
  let params = Data.solver_params ctx in
  let buffers = Sweep.buffers ~quick:(Data.quick ctx) () in
  (* Short-memory laws: correlation gone within a few mean epochs. *)
  let short_cutoff = 4.0 *. mean_epoch in
  let laws =
    [
      ( "par-short",
        Lrd_dist.Interarrival.truncated_pareto
          ~theta:
            (Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch ~alpha
               ~cutoff:short_cutoff ())
          ~alpha ~cutoff:short_cutoff );
      ("exponential", Lrd_dist.Interarrival.exponential ~mean:mean_epoch);
      ("determin.", Lrd_dist.Interarrival.deterministic ~value:mean_epoch);
      ("uniform", Lrd_dist.Interarrival.uniform ~lo:0.0 ~hi:(2.0 *. mean_epoch));
      ( "gamma",
        Lrd_dist.Interarrival.gamma ~shape:2.0 ~scale:(mean_epoch /. 2.0) );
      ( "lognormal",
        (* sigma = 1; mu set so the mean matches. *)
        Lrd_dist.Interarrival.lognormal ~mu:(log mean_epoch -. 0.5) ~sigma:1.0
      );
      ( "hyperexp",
        (* Three phases a decade apart, weighted so the mean matches:
           0.6 x 0.3m + 0.3 x m + 0.1 x 5.2m = m. *)
        Lrd_dist.Interarrival.hyperexponential ~weights:[| 0.6; 0.3; 0.1 |]
          ~means:
            [| 0.3 *. mean_epoch; mean_epoch; 5.2 *. mean_epoch |] );
      ( "par-inf",
        Lrd_dist.Interarrival.truncated_pareto
          ~theta:(mean_epoch *. (alpha -. 1.0))
          ~alpha ~cutoff:Float.infinity );
    ]
  in
  (* Models are built once per law up front; the grid of solves (one row
     per law, one column per buffer) runs on the pool, each law's cells
     sharing one memoizing workload through the cache. *)
  let models =
    Array.of_list
      (List.map
         (fun (name, law) ->
           (name, Lrd_core.Model.create ~marginal ~interarrival:law))
         laws)
  in
  let cache = Lrd_core.Workload.Cache.create () in
  let rows =
    Sweep.psurface ?pool:(Data.pool ctx) ~xs:buffers ~ys:models
      ~f:(fun buffer_seconds (name, model) ->
        (Lrd_core.Solver.solve_utilization ~params ~cache:(cache, name) model
           ~utilization:Data.mtv_utilization ~buffer_seconds)
          .Lrd_core.Solver.loss)
      ()
  in
  let columns =
    List.mapi (fun i (name, _) -> (name, rows.(i))) laws
  in
  Table.print_multi_series fmt ~title ~xlabel:"buffer_s" ~ylabel:"loss rate"
    ~xs:buffers columns;
  Format.fprintf fmt
    "(all laws share the mean epoch %.4g s; the light-tailed laws agree \
     with each other at large buffers - in the spread order of their \
     epoch variances - and all diverge from the untruncated Pareto)@."
    mean_epoch
