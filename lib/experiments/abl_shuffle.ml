(* Ablation: internal vs external shuffling (Erramilli et al.'s dual
   experiments).  External shuffling removes correlation beyond the
   block; internal shuffling removes it inside the block while keeping
   the long-range structure.  Comparing both against the unshuffled
   trace separates the loss contribution of short-lag and long-lag
   correlation at a fixed buffer. *)

let id = "abl-shuffle"

let title =
  "Ablation: internal vs external shuffling (MTV trace, utilization 0.8, \
   B = 0.5 s)"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let utilization = Data.mtv_utilization in
  let buffer_seconds = 0.5 in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 99L) in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let loss t =
    let sim =
      Lrd_fluidsim.Queue_sim.make ~service_rate:c
        ~buffer:(buffer_seconds *. c) ()
    in
    Lrd_fluidsim.Queue_sim.loss_rate (Lrd_fluidsim.Queue_sim.run_trace sim t)
  in
  let blocks =
    if Data.quick ctx then [| 8; 64; 512 |] else [| 4; 16; 64; 256; 1024; 4096 |]
  in
  (* Each shuffle draws from its own index-derived stream (external
     shuffles take indices 0..n-1, internal ones n..2n-1), so the grid
     is the same sequentially and on the pool.  Both families run as ONE
     fused task set: a single pool dispatch keeps every domain busy
     across the seam instead of draining twice, and the per-task indices
     are exactly the ones the two separate sweeps used. *)
  let n = Array.length blocks in
  let tasks = Array.init (2 * n) (fun i -> (i, blocks.(i mod n))) in
  let losses =
    Sweep.map ?pool:(Data.pool ctx)
      (fun (i, b) ->
        let rng = Lrd_rng.Rng.split_indexed rng ~index:i in
        if i < n then loss (Lrd_trace.Shuffle.external_shuffle rng trace ~block:b)
        else loss (Lrd_trace.Shuffle.internal_shuffle rng trace ~block:b))
      tasks
  in
  let external_losses = Array.sub losses 0 n
  and internal_losses = Array.sub losses n n in
  Table.print_multi_series fmt ~title ~xlabel:"block" ~ylabel:"loss rate"
    ~xs:(Array.map float_of_int blocks)
    [ ("external", external_losses); ("internal", internal_losses) ];
  Format.fprintf fmt "unshuffled loss: %s@."
    (Table.cell_value (loss trace));
  Format.fprintf fmt
    "(external shuffling approaches the fully-uncorrelated loss as the \
     block shrinks; internal shuffling approaches it as the block grows)@."
