(* Fig. 6: external shuffling destroys correlation beyond the block
   length while preserving it inside blocks (and preserving the marginal
   exactly).  Rendered as the empirical autocorrelation of the MTV-like
   trace before and after shuffling, around the block boundary. *)

let id = "fig6"
let title = "Fig. 6: external shuffling kills correlation beyond the block"

let run ctx fmt =
  let trace = Data.mtv ctx in
  let block = 128 in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 6L) in
  let shuffled = Lrd_trace.Shuffle.external_shuffle rng trace ~block in
  let max_lag = min (4 * block) (Lrd_trace.Trace.length trace / 4) in
  (* Both series go through the domain's planned ACF workspace (the
     shuffled trace may be a few slots shorter, but rounds to the same
     transform size); results are bit-identical to the one-shot path. *)
  let acf rates =
    let ws = Lrd_stats.Autocorr.domain_workspace ~n:(Array.length rates) in
    Lrd_stats.Autocorr.Workspace.autocorrelation ws rates ~max_lag
  in
  let acf_orig = acf trace.Lrd_trace.Trace.rates in
  let acf_shuf = acf shuffled.Lrd_trace.Trace.rates in
  let lags =
    [| 1; 2; 4; 8; 16; 32; 64; 96; 128; 160; 256; 384; 512 |]
    |> Array.to_list
    |> List.filter (fun l -> l <= max_lag)
    |> Array.of_list
  in
  Table.heading fmt title;
  Format.fprintf fmt "MTV-like trace, block = %d samples (%.3g s)@." block
    (float_of_int block *. trace.Lrd_trace.Trace.slot);
  Table.print_multi_series fmt ~title:"autocorrelation by lag"
    ~xlabel:"lag" ~ylabel:"acf"
    ~xs:(Array.map float_of_int lags)
    [
      ("original", Array.map (fun l -> acf_orig.(l)) lags);
      ("shuffled", Array.map (fun l -> acf_shuf.(l)) lags);
    ]
