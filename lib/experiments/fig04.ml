(* Fig. 4: model loss rate for the MTV-like trace as a function of
   normalized buffer size and cutoff lag, at utilization 0.8.  The two
   headline shapes: (a) for each buffer the loss flattens once the
   cutoff exceeds the correlation horizon; (b) for large cutoffs,
   growing the buffer barely reduces loss (buffer ineffectiveness). *)

let id = "fig4"
let title = "Fig. 4: model loss vs (buffer, cutoff) - MTV, utilization 0.8"

let surface ctx ~model_of ~utilization =
  let quick = Data.quick ctx in
  let buffers = Sweep.buffers ~quick () in
  let cutoffs = Sweep.cutoffs ~quick () in
  let params = Data.solver_params ctx in
  (* One model + memoizing workload per cutoff column, shared across the
     buffer rows (and across domains when a pool is set).  The cutoff is
     the x axis, so the buffer — hence the occupancy grid — is constant
     along each warm-start chain of the scheduled sweep. *)
  let cache = Lrd_core.Workload.Cache.create () in
  let cells =
    Sweep.scheduled_surface ?pool:(Data.pool ctx)
      ~policy:(Data.gap_policy ctx) ?shard:(Data.shard ctx) ~xs:cutoffs
      ~ys:buffers
      ~state:(fun cutoff buffer ->
        let key = Sweep.cell_key cutoff in
        let model =
          Lrd_core.Workload.Cache.model cache ~key (fun () ->
              model_of ~cutoff)
        in
        Lrd_core.Solver.State.create_utilization ~params ~cache:(cache, key)
          model ~utilization ~buffer_seconds:buffer)
      ()
    |> Array.map (Array.map (fun r -> r.Lrd_core.Solver.loss))
  in
  {
    Table.title;
    xlabel = "cutoff_s";
    ylabel = "buffer_s";
    zlabel = "loss rate";
    xs = cutoffs;
    ys = buffers;
    cells;
  }

let compute ctx =
  {
    (surface ctx
       ~model_of:(fun ~cutoff -> Data.mtv_model ctx ~cutoff)
       ~utilization:Data.mtv_utilization)
    with
    Table.title = title;
  }

let run ctx fmt = Table.print_surface fmt (compute ctx)
