(* Fig. 9: loss vs cutoff lag for the MTV and Bellcore marginals with
   every other parameter held equal (normalized buffer 1 s, utilization
   2/3, theta = 20 ms, H = 0.9): the marginal distribution alone moves
   the loss by orders of magnitude. *)

let id = "fig9"

let title =
  "Fig. 9: loss vs cutoff for the two marginals, all else equal (B = 1 s, \
   util = 2/3, theta = 20 ms, H = 0.9)"

let theta = 0.020
let hurst = 0.9
let utilization = 2.0 /. 3.0
let buffer_seconds = 1.0

let compute ctx =
  let quick = Data.quick ctx in
  let cutoffs = Sweep.cutoffs ~quick () in
  let params = Data.solver_params ctx in
  let series marginal =
    Sweep.map ?pool:(Data.pool ctx)
      (fun cutoff ->
        let model = Lrd_core.Model.of_hurst ~marginal ~hurst ~theta ~cutoff in
        (Lrd_core.Solver.solve_utilization ~params model ~utilization
           ~buffer_seconds)
          .Lrd_core.Solver.loss)
      cutoffs
  in
  (cutoffs, series (Data.mtv_marginal ctx), series (Data.bc_marginal ctx))

let run ctx fmt =
  let cutoffs, mtv, bc = compute ctx in
  Table.print_multi_series fmt ~title ~xlabel:"cutoff_s" ~ylabel:"loss rate"
    ~xs:cutoffs
    [ ("MTV", mtv); ("Bellcore", bc) ]
