(* Fig. 7: trace-driven counterpart of Fig. 4 — loss measured by feeding
   externally shuffled versions of the MTV-like trace to the exact fluid
   queue simulator, with the shuffle block length playing the role of the
   cutoff lag.  Completely independent of the stochastic model; the
   paper uses the agreement between Figs. 4 and 7 to validate the
   model. *)

let id = "fig7"

let title =
  "Fig. 7: shuffled-trace simulation loss vs (buffer, cutoff) - MTV, \
   utilization 0.8"

let surface ctx ~trace ~utilization ~title =
  let quick = Data.quick ctx in
  let buffers = Sweep.buffers ~quick () in
  let cutoffs = Sweep.cutoffs ~quick () in
  let blocks = Sweep.shuffle_blocks_of_cutoffs trace cutoffs in
  let rng = Lrd_rng.Rng.create ~seed:(Int64.add (Data.seed ctx) 7L) in
  (* One shuffle per cutoff, reused across every buffer size (columns of
     the surface), exactly as a single shuffled trace would be in the
     paper's simulations.  Each column shuffles with its own stream
     split off by column index, so the shuffle is the same whether the
     columns are built sequentially or on the pool. *)
  let columns =
    Sweep.map ?pool:(Data.pool ctx)
      (fun (i, block) ->
        match block with
        | None -> trace
        | Some b ->
            let rng = Lrd_rng.Rng.split_indexed rng ~index:i in
            Lrd_trace.Shuffle.external_shuffle rng trace ~block:b)
      (Array.mapi (fun i (_, block) -> (i, block)) blocks)
  in
  let c = Lrd_trace.Trace.service_rate_for_utilization trace ~utilization in
  let cells =
    Sweep.psurface ?pool:(Data.pool ctx) ~xs:columns ~ys:buffers
      ~f:(fun shuffled buffer_seconds ->
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c
            ~buffer:(buffer_seconds *. c) ()
        in
        Lrd_fluidsim.Queue_sim.loss_rate
          (Lrd_fluidsim.Queue_sim.run_trace sim shuffled))
      ()
  in
  {
    Table.title;
    xlabel = "cutoff_s";
    ylabel = "buffer_s";
    zlabel = "simulated loss rate";
    xs = cutoffs;
    ys = buffers;
    cells;
  }

let compute ctx =
  surface ctx ~trace:(Data.mtv ctx) ~utilization:Data.mtv_utilization ~title

let run ctx fmt = Table.print_surface fmt (compute ctx)
