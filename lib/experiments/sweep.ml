let buffers ~quick ?(max_seconds = 2.0) () =
  if not (max_seconds > 0.01) then
    invalid_arg
      (Printf.sprintf
         "Sweep.buffers: max_seconds must exceed 0.01 s (the logspace lower \
          bound), got %g"
         max_seconds);
  let points = if quick then 4 else 7 in
  Lrd_numerics.Array_ops.logspace 0.01 max_seconds points

let cutoffs ~quick () =
  let points = if quick then 4 else 10 in
  let finite = Lrd_numerics.Array_ops.logspace 0.1 100.0 points in
  Array.append finite [| Float.infinity |]

let hursts ~quick () =
  if quick then [| 0.55; 0.75; 0.95 |] else [| 0.55; 0.65; 0.75; 0.85; 0.95 |]

let scalings ~quick () =
  if quick then [| 0.5; 1.0; 1.5 |] else [| 0.5; 0.75; 1.0; 1.25; 1.5 |]

let stream_counts ~quick () =
  if quick then [| 1; 3; 7 |] else [| 1; 2; 3; 5; 7; 10 |]

(* All grid evaluation funnels through these three helpers, so a figure
   routed here runs on the experiment context's domain pool when one is
   configured and sequentially otherwise.  The cell function must obey
   the pool's determinism contract (no shared mutable state, randomness
   only via [Rng.split_indexed] on the cell index): under that contract
   the parallel grids are bit-identical to the sequential ones, which
   the tier-1 determinism test enforces. *)

(* Grid cells evaluated through the sweep helpers, pooled or
   sequential: the denominator for workload-cache and solver counters
   when reading a metrics snapshot of a figure run. *)
let m_cells = Lrd_obs.Obs.Counter.make "sweep/cells"

(* A traced cell records one timeline slice on whichever domain ran it;
   pooled cells also get a [pool/task] slice from the scheduler, so the
   sweep slice nests inside it with the cell work attributed by name. *)
let traced1 f x =
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.with_span "sweep/cell" (fun () -> f x)
  else f x

let traced2 f x y =
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.with_span "sweep/cell" (fun () -> f x y)
  else f x y

let map ?pool f xs =
  Lrd_obs.Obs.Counter.add m_cells (Array.length xs);
  let f = traced1 f in
  match pool with
  | None -> Array.map f xs
  | Some p -> Lrd_parallel.Pool.map p f xs

let psurface ?pool ~xs ~ys ~f () =
  Lrd_obs.Obs.Counter.add m_cells (Array.length xs * Array.length ys);
  let f = traced2 f in
  match pool with
  | None -> Array.map (fun y -> Array.map (fun x -> f x y) xs) ys
  | Some p -> Lrd_parallel.Pool.map2_grid p ~xs ~ys ~f

let surface ?pool ~xs ~ys ~f () =
  psurface ?pool ~xs ~ys ~f:(fun x y -> f ~x ~y) ()

let cell_key x = Printf.sprintf "%h" x

(* ------------------------------------------------------------------ *)
(* Gap-driven sweep scheduler.

   [scheduled_surface] evaluates a grid of resumable solver states
   ([Solver.State]) instead of independent fire-and-forget solves, and
   spends iterations where uncertainty lives: each round it advances the
   cells with the widest relative bound gaps by one slice, in parallel
   on the pool when one is given.  Two further levers ride on the same
   machinery:

   - continuation along the x axis: when a cell finishes, its right
     neighbour is created and warm-started from its occupancy pmfs
     ([Solver.State.seed_from] — a bitwise grid-coincidence check with
     a cold-start fallback), skipping the refinement ladder and most of
     the mixing time;
   - a per-figure [gap_policy]: an optional plotted-contrast rule stops
     cells whose certified upper bound already sits decades below the
     surface's largest lower bound (their exact value cannot change the
     figure), and an optional global iteration budget hard-stops the
     whole surface.

   Determinism: rounds are sequential and the frontier is a pure
   function of the accumulated solver states, which themselves evolve
   independently per cell — so results are byte-identical for every
   pool size, exactly like [surface].  The pool only changes which
   domain runs a given slice. *)

type contrast = Decades of float | From_axis

type gap_policy = {
  contrast : contrast option;
  iteration_budget : int option;
}

let uniform_policy = { contrast = None; iteration_budget = None }

let m_warm_starts = Lrd_obs.Obs.Counter.make "sweep/warm_starts"
let m_iterations_saved = Lrd_obs.Obs.Counter.make "sweep/iterations_saved"
let m_early_stopped = Lrd_obs.Obs.Counter.make "sweep/cells_early_stopped"
let m_rounds = Lrd_obs.Obs.Counter.make "sweep/schedule_rounds"
let m_sched_gap = Lrd_obs.Obs.Trajectory.make ~capacity:256 "sweep/gap_rel"

let scheduled_surface (type a b) ?pool ?(policy = uniform_policy)
    ?(slice = 512) ?(warm_start = true) ?shard ~(xs : a array)
    ~(ys : b array) ~(state : a -> b -> Lrd_core.Solver.State.t) () =
  let module State = Lrd_core.Solver.State in
  let module Obs = Lrd_obs.Obs in
  if slice <= 0 then
    invalid_arg "Sweep.scheduled_surface: slice must be positive";
  let nx = Array.length xs and ny = Array.length ys in
  match shard with
  | Some sh when Shard.is_replay sh ->
      (* Merge replay: every cell is served from the merged store, the
         [state] callback is never invoked and no solver work runs — the
         figure's printing path sees bitwise the whole run's results. *)
      Shard.replay_grid sh ~nx ~ny
  | _ ->
  (* Row ownership: a compute-mode shard runs only its rows.  Rows are
     the unit of determinism — warm-start chains run left to right
     within a row — but the contrast/budget policies couple cells
     across the whole surface, so sharding requires the uniform
     policy. *)
  let owned =
    match shard with
    | None -> fun _ -> true
    | Some sh ->
        if policy <> uniform_policy then
          invalid_arg
            "Sweep.scheduled_surface: sharding requires the uniform gap \
             policy (contrast/budget couple cells across shards)";
        fun iy -> Shard.owns_row sh ~iy
  in
  let owned_rows = ref 0 in
  for iy = 0 to ny - 1 do
    if owned iy then incr owned_rows
  done;
  (* Owned cells only: summing [sweep/cells] across a shard set then
     reproduces the whole run's count exactly. *)
  Obs.Counter.add m_cells (!owned_rows * nx);
  if nx = 0 then Array.map (fun _ -> [||]) ys
  else begin
    let n = nx * ny in
    let states : State.t option array = Array.make n None in
    (* Iterations the warm-start source had spent when this cell was
       seeded; -1 for cold cells.  The difference to the seeded cell's
       own final count is a conservative estimate of the iterations the
       continuation saved (the true counterfactual would need a cold
       rerun). *)
    let seed_iterations = Array.make n (-1) in
    let handled = Array.make n false in
    let rec on_finished i =
      if not handled.(i) then begin
        handled.(i) <- true;
        (match states.(i) with
        | Some st when seed_iterations.(i) >= 0 ->
            Obs.Counter.add m_iterations_saved
              (max 0 (seed_iterations.(i) - State.iterations st))
        | _ -> ());
        (* Continuation: the chain's next cell starts — warm when the
           grids coincide — as soon as its predecessor settles. *)
        let ix = i mod nx and iy = i / nx in
        if ix + 1 < nx && states.(i + 1) = None then create_cell iy (ix + 1)
      end
    and create_cell iy ix =
      let i = (iy * nx) + ix in
      let st = state xs.(ix) ys.(iy) in
      states.(i) <- Some st;
      if warm_start && ix > 0 then (
        match states.(i - 1) with
        | Some src when State.finished src ->
            if State.seed_from ~src st then begin
              Obs.Counter.incr m_warm_starts;
              seed_iterations.(i) <- State.iterations src;
              if Obs.Trace.enabled () then
                Obs.Trace.instant ~arg:i "sweep/warm_start"
            end
        | _ -> ());
      (* A trivial cell (zero buffer / non-growing workload) is born
         finished: keep the chain moving without waiting for a round. *)
      if State.finished st then on_finished i
    in
    let active () =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match states.(i) with
        | Some st when not (State.finished st) -> acc := i :: !acc
        | _ -> ()
      done;
      !acc
    in
    let total_iterations () =
      Array.fold_left
        (fun acc s ->
          match s with Some st -> acc + State.iterations st | None -> acc)
        0 states
    in
    let stop_cell i =
      match states.(i) with
      | Some st when not (State.finished st) ->
          State.stop st;
          Obs.Counter.incr m_early_stopped;
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~arg:i "sweep/early_stop";
          on_finished i
      | _ -> ()
    in
    (* Plotted-contrast early stop: a cell whose certified upper bound
       sits [decades] below the largest lower bound anywhere on the
       surface so far cannot move its own pixel — every further
       iteration would only narrow an invisibly small value. *)
    let apply_contrast () =
      let decades =
        match policy.contrast with
        | None -> None
        | Some (Decades d) -> Some d
        | Some From_axis ->
            (* Derive the contrast from the loss axis itself: the
               certified lower bounds of finished cells span the
               plotted range, and a cell more than one decade below
               the smallest plotted value sits off the bottom of the
               axis.  Until at least one cell has finished with a
               positive bound there is no axis to read, so no cut is
               applied — the derivation only ever sees settled values
               and is a pure function of the states, keeping rounds
               deterministic.  The legacy fixed default (2 decades)
               is the floor so a near-flat axis never turns the rule
               into a hair trigger. *)
            let lmax = ref 0.0 and lmin = ref Float.infinity in
            Array.iter
              (function
                | Some st when State.finished st ->
                    let lo, _ = State.bounds st in
                    if Float.is_finite lo && lo > 0.0 then begin
                      if lo > !lmax then lmax := lo;
                      if lo < !lmin then lmin := lo
                    end
                | _ -> ())
              states;
            if !lmax > 0.0 then
              Some (Float.max 2.0 (Float.log10 (!lmax /. !lmin) +. 1.0))
            else None
      in
      match decades with
      | None -> ()
      | Some decades ->
          let floor_lower = ref 0.0 in
          Array.iter
            (function
              | Some st ->
                  let lo, _ = State.bounds st in
                  if Float.is_finite lo && lo > !floor_lower then
                    floor_lower := lo
              | None -> ())
            states;
          let cut = !floor_lower *. (10.0 ** -.decades) in
          if cut > 0.0 then
            List.iter
              (fun i ->
                match states.(i) with
                | Some st ->
                    let _, hi = State.bounds st in
                    if Float.is_finite hi && hi < cut then stop_cell i
                | None -> ())
              (active ())
    in
    (* Global budget: once the surface has spent its iteration cap,
       stop everything — including chain cells not yet created, which
       get their (vacuous but certified) initial bounds. *)
    let apply_budget () =
      match policy.iteration_budget with
      | None -> ()
      | Some budget ->
          if total_iterations () >= budget then begin
            let rec drain () =
              match active () with
              | [] -> ()
              | act ->
                  List.iter stop_cell act;
                  drain ()
            in
            drain ()
          end
    in
    let advance_cell i =
      match states.(i) with
      | Some st ->
          if Lrd_obs.Obs.Trace.enabled () then
            Lrd_obs.Obs.Trace.with_span ~arg:i "sweep/slice" (fun () ->
                State.advance st ~iterations:slice)
          else State.advance st ~iterations:slice
      | None -> ()
    in
    for iy = 0 to ny - 1 do
      if owned iy then create_cell iy 0
    done;
    apply_budget ();
    let rec rounds () =
      match active () with
      | [] -> ()
      | act ->
          Obs.Counter.incr m_rounds;
          (* Frontier: every active cell within 2x of the widest
             relative gap.  Fresh cells report an infinite gap and are
             always scheduled; as the surface converges the frontier
             narrows onto the hard cells. *)
          let gap i =
            match states.(i) with
            | Some st -> State.gap_rel st
            | None -> 0.0
          in
          let gmax = List.fold_left (fun g i -> Float.max g (gap i)) 0.0 act in
          let frontier =
            Array.of_list
              (List.filter (fun i -> gap i >= 0.5 *. gmax) act)
          in
          (match pool with
          | Some p when Array.length frontier > 1 ->
              Lrd_parallel.Pool.iter p
                (fun k -> advance_cell frontier.(k))
                (Array.length frontier)
          | _ -> Array.iter advance_cell frontier);
          (* Post-round bookkeeping runs on the scheduling domain, in
             index order: gap trajectories, chain continuation, then
             the policy passes — all deterministic. *)
          Array.iter
            (fun i ->
              if Obs.enabled () then Obs.Trajectory.record m_sched_gap (gap i);
              match states.(i) with
              | Some st when State.finished st -> on_finished i
              | _ -> ())
            frontier;
          apply_contrast ();
          apply_budget ();
          rounds ()
    in
    if Obs.Trace.enabled () then
      Obs.Trace.with_span "sweep/scheduled" rounds
    else rounds ();
    let results =
      Array.init ny (fun iy ->
          Array.init nx (fun ix ->
              match states.((iy * nx) + ix) with
              | Some st -> State.result st
              | None ->
                  (* Unowned rows report a NaN placeholder in this
                     shard's partial output; the merge replaces them
                     with the owning shard's cells. *)
                  if owned iy then assert false else Shard.absent_result))
    in
    (match shard with
    | Some sh -> Shard.record_grid sh ~nx ~ny results
    | None -> ());
    results
  end

(* The shared parameter grids, as manifest JSON.  Infinite cutoffs are
   rendered as the string "inf": JSON has no infinity literal and a
   null would lose which cell the value was. *)
let manifest_fields ~quick () =
  let open Lrd_obs.Json in
  let num f = if Float.is_finite f then Num f else Str "inf" in
  let floats a = List (Array.to_list (Array.map num a)) in
  let ints a =
    List (Array.to_list (Array.map (fun i -> Num (float_of_int i)) a))
  in
  [
    ("buffers_seconds", floats (buffers ~quick ()));
    ("cutoffs_seconds", floats (cutoffs ~quick ()));
    ("hursts", floats (hursts ~quick ()));
    ("scalings", floats (scalings ~quick ()));
    ("stream_counts", ints (stream_counts ~quick ()));
  ]

let shuffled_loss rng trace ~utilization ~buffer_seconds ~block =
  let shuffled =
    match block with
    | None -> trace
    | Some b -> Lrd_trace.Shuffle.external_shuffle rng trace ~block:b
  in
  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
  in
  let sim =
    Lrd_fluidsim.Queue_sim.make ~service_rate:c
      ~buffer:(buffer_seconds *. c) ()
  in
  Lrd_fluidsim.Queue_sim.loss_rate
    (Lrd_fluidsim.Queue_sim.run_trace sim shuffled)

let shuffle_blocks_of_cutoffs trace cutoffs =
  let slot = trace.Lrd_trace.Trace.slot in
  Array.map
    (fun tc ->
      if tc = Float.infinity then (tc, None)
      else (tc, Some (max 1 (int_of_float (Float.round (tc /. slot))))))
    cutoffs
