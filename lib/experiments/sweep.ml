let buffers ~quick ?(max_seconds = 2.0) () =
  if not (max_seconds > 0.01) then
    invalid_arg
      (Printf.sprintf
         "Sweep.buffers: max_seconds must exceed 0.01 s (the logspace lower \
          bound), got %g"
         max_seconds);
  let points = if quick then 4 else 7 in
  Lrd_numerics.Array_ops.logspace 0.01 max_seconds points

let cutoffs ~quick () =
  let points = if quick then 4 else 10 in
  let finite = Lrd_numerics.Array_ops.logspace 0.1 100.0 points in
  Array.append finite [| Float.infinity |]

let hursts ~quick () =
  if quick then [| 0.55; 0.75; 0.95 |] else [| 0.55; 0.65; 0.75; 0.85; 0.95 |]

let scalings ~quick () =
  if quick then [| 0.5; 1.0; 1.5 |] else [| 0.5; 0.75; 1.0; 1.25; 1.5 |]

let stream_counts ~quick () =
  if quick then [| 1; 3; 7 |] else [| 1; 2; 3; 5; 7; 10 |]

(* All grid evaluation funnels through these three helpers, so a figure
   routed here runs on the experiment context's domain pool when one is
   configured and sequentially otherwise.  The cell function must obey
   the pool's determinism contract (no shared mutable state, randomness
   only via [Rng.split_indexed] on the cell index): under that contract
   the parallel grids are bit-identical to the sequential ones, which
   the tier-1 determinism test enforces. *)

(* Grid cells evaluated through the sweep helpers, pooled or
   sequential: the denominator for workload-cache and solver counters
   when reading a metrics snapshot of a figure run. *)
let m_cells = Lrd_obs.Obs.Counter.make "sweep/cells"

(* A traced cell records one timeline slice on whichever domain ran it;
   pooled cells also get a [pool/task] slice from the scheduler, so the
   sweep slice nests inside it with the cell work attributed by name. *)
let traced1 f x =
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.with_span "sweep/cell" (fun () -> f x)
  else f x

let traced2 f x y =
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.with_span "sweep/cell" (fun () -> f x y)
  else f x y

let map ?pool f xs =
  Lrd_obs.Obs.Counter.add m_cells (Array.length xs);
  let f = traced1 f in
  match pool with
  | None -> Array.map f xs
  | Some p -> Lrd_parallel.Pool.map p f xs

let psurface ?pool ~xs ~ys ~f () =
  Lrd_obs.Obs.Counter.add m_cells (Array.length xs * Array.length ys);
  let f = traced2 f in
  match pool with
  | None -> Array.map (fun y -> Array.map (fun x -> f x y) xs) ys
  | Some p -> Lrd_parallel.Pool.map2_grid p ~xs ~ys ~f

let surface ?pool ~xs ~ys ~f () =
  psurface ?pool ~xs ~ys ~f:(fun x y -> f ~x ~y) ()

let cell_key x = Printf.sprintf "%h" x

(* The shared parameter grids, as manifest JSON.  Infinite cutoffs are
   rendered as the string "inf": JSON has no infinity literal and a
   null would lose which cell the value was. *)
let manifest_fields ~quick () =
  let open Lrd_obs.Json in
  let num f = if Float.is_finite f then Num f else Str "inf" in
  let floats a = List (Array.to_list (Array.map num a)) in
  let ints a =
    List (Array.to_list (Array.map (fun i -> Num (float_of_int i)) a))
  in
  [
    ("buffers_seconds", floats (buffers ~quick ()));
    ("cutoffs_seconds", floats (cutoffs ~quick ()));
    ("hursts", floats (hursts ~quick ()));
    ("scalings", floats (scalings ~quick ()));
    ("stream_counts", ints (stream_counts ~quick ()));
  ]

let shuffled_loss rng trace ~utilization ~buffer_seconds ~block =
  let shuffled =
    match block with
    | None -> trace
    | Some b -> Lrd_trace.Shuffle.external_shuffle rng trace ~block:b
  in
  let c =
    Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
  in
  let sim =
    Lrd_fluidsim.Queue_sim.make ~service_rate:c
      ~buffer:(buffer_seconds *. c) ()
  in
  Lrd_fluidsim.Queue_sim.loss_rate
    (Lrd_fluidsim.Queue_sim.run_trace sim shuffled)

let shuffle_blocks_of_cutoffs trace cutoffs =
  let slot = trace.Lrd_trace.Trace.slot in
  Array.map
    (fun tc ->
      if tc = Float.infinity then (tc, None)
      else (tc, Some (max 1 (int_of_float (Float.round (tc /. slot))))))
    cutoffs
