(** Snapshot export: OpenMetrics text exposition and a streaming JSONL
    metrics ticker. *)

val openmetrics : Obs.snapshot -> string
(** The snapshot in OpenMetrics/Prometheus text exposition format.
    Counters become [lrd_<name>_total] (per-domain series labelled
    [domain="k"]), gauges expose their last value (unset and non-finite
    gauges are skipped), histograms become cumulative
    [_bucket{le="..."}] series with [_sum]/[_count], trajectories are
    skipped (no exposition models an ordered ring).  Ends with
    [# EOF]. *)

val metric_name : string -> string
(** Sanitized exposition name: [lrd_] prefix, characters outside
    [[a-zA-Z0-9_:]] replaced by [_].  Not invertible. *)

val escape_label_value : string -> string
(** OpenMetrics label-value escaping: backslash, double quote and
    newline become backslash escapes. *)

val unescape_label_value : string -> string
(** Inverse of {!escape_label_value}. *)

(** {1 Metrics ticker}

    A background domain appending one timestamped snapshot line (a
    [ts] epoch-seconds key plus the native [metrics] array, one object
    per line) to a JSONL file every [interval] seconds.  A tick is also written synchronously at start
    and at stop, so runs shorter than one interval still produce a
    series.  At most one ticker runs per process; starting a new one
    stops the old one first. *)

val start_ticker : interval:float -> path:string -> (unit, string) result
(** Errors on a non-positive interval or an unwritable [path]. *)

val stop_ticker : unit -> unit
(** Write a final tick, stop the background domain and close the file.
    No-op when no ticker is running. *)
