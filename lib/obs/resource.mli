(** Sampled GC/resource telemetry.

    {!sample} publishes the current [Gc.quick_stat] into gauges named
    [gc/minor_words], [gc/promoted_words], [gc/major_words],
    [gc/minor_collections], [gc/major_collections], [gc/heap_words] and
    [gc/compactions]; they appear in snapshots only once the first
    enabled sample has been taken.  {!Alloc} attributes minor-heap
    allocation to code regions via [Gc.minor_words] deltas, mirroring
    the {!Obs.Span} start/stop protocol.

    Both disabled paths cost one branch and allocate nothing (the
    contract pinned by the [Gc.minor_words] test in [test_obs]). *)

val sample : unit -> unit
(** Publish current GC statistics into the gauges.  No-op when
    {!Obs.enabled} is off. *)

module Alloc : sig
  type t
  (** A named minor-allocation counter (an {!Obs.Counter} of words). *)

  val make : string -> t

  val start : unit -> float
  (** Current [Gc.minor_words] when enabled, [neg_infinity] (a static,
      allocation-free sentinel) when disabled. *)

  val stop : t -> float -> unit
  (** [stop t w0] adds the minor words allocated since [w0] to [t] if
      recording was enabled at both ends. *)

  val value : t -> int
  (** Total attributed minor words across domains. *)
end
