type status =
  | Unchanged
  | Improved
  | Changed
  | Regressed
  | Missing_current
  | Missing_base

type row = {
  name : string;
  base : float option;
  current : float option;
  status : status;
}

type report = {
  rows : row list;
  regressions : int;
  missing : int;
  additions : int;
}

(* ------------------------------------------------------------------ *)
(* Scalar extraction *)

let metrics_scalars entries =
  let out = ref [] in
  let push name v = out := (name, v) :: !out in
  List.iter
    (fun e ->
      match (Json.member "name" e, Json.member "kind" e) with
      | Some (Str name), Some (Str kind) -> (
          let num key =
            Option.bind (Json.member key e) Json.to_float_opt
          in
          match kind with
          | "counter" -> Option.iter (push name) (num "total")
          | "gauge" -> Option.iter (push name) (num "value")
          | "histogram" ->
              Option.iter (push name) (num "count");
              Option.iter
                (fun s -> if s <> 0.0 then push (name ^ "/sum") s)
                (num "sum")
          | _ -> ())
      | _ -> ())
    entries;
  List.rev !out

let bench_scalars entries =
  List.filter_map
    (fun e ->
      match (Json.member "name" e, Json.member "ns_per_run" e) with
      | Some (Str name), Some v ->
          Option.map (fun f -> (name, f)) (Json.to_float_opt v)
      | _ -> None)
    entries

let rec scalars (v : Json.t) =
  match v with
  | Obj _ when Json.member "metrics" v <> None && Json.member "schema" v <> None
    -> (
      (* A manifest: check the tag, then diff the embedded snapshot. *)
      match Json.member "schema" v with
      | Some (Str s) when s = Manifest.schema || s = Manifest.shard_schema -> (
          match Json.member "metrics" v with
          | Some Null | None -> Ok []
          | Some m -> scalars m)
      | Some (Str s) -> Error (Printf.sprintf "unknown manifest schema %S" s)
      | _ -> Error "manifest schema tag is not a string")
  | Obj _ -> (
      match Json.member "metrics" v with
      | Some (List entries) -> Ok (metrics_scalars entries)
      | _ -> Error "not a metrics snapshot (no \"metrics\" array)")
  | List entries -> Ok (bench_scalars entries)
  | _ -> Error "not a recognized snapshot (expected an object or array)"

(* ------------------------------------------------------------------ *)

let classify ~exact ~threshold ~min_abs base current =
  match (base, current) with
  | None, Some _ -> Missing_base
  | Some _, None -> Missing_current
  | None, None -> Unchanged
  | Some b, Some c ->
      if c = b then Unchanged
      else if exact then
        (* Equivalence gating (e.g. a merged sharded run against the
           whole run): any numeric difference in either direction is a
           failure; one-sided names keep their warning semantics. *)
        Regressed
      else if c > b then
        if b > 0.0 && c > threshold *. b && c -. b >= min_abs then Regressed
        else Changed
      else if b > 0.0 && b > threshold *. c && b -. c >= min_abs then Improved
      else Changed

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

let compare_values ?(threshold = 2.0) ?(min_abs = 0.0) ?filter
    ?(exact = false) base current =
  match (scalars base, scalars current) with
  | Error e, _ -> Error ("base: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok bs, Ok cs ->
      let keep (name, _) =
        match filter with None -> true | Some f -> contains ~sub:f name
      in
      let bs = List.filter keep bs and cs = List.filter keep cs in
      let names =
        List.sort_uniq String.compare (List.map fst bs @ List.map fst cs)
      in
      let rows =
        List.map
          (fun name ->
            let base = List.assoc_opt name bs
            and current = List.assoc_opt name cs in
            {
              name;
              base;
              current;
              status = classify ~exact ~threshold ~min_abs base current;
            })
          names
      in
      let count st = List.length (List.filter (fun r -> r.status = st) rows) in
      Ok
        {
          rows;
          regressions = count Regressed;
          (* A name in the base only is a warning (a filtered run misses
             series); a name in the current only is an improvement — new
             coverage — and is counted separately, not as missing. *)
          missing = count Missing_current;
          additions = count Missing_base;
        }

let status_label = function
  | Unchanged -> "="
  | Improved -> "improved"
  | Changed -> "changed"
  | Regressed -> "REGRESSED"
  | Missing_current -> "missing in current"
  | Missing_base -> "missing in base"

let render report =
  let b = Buffer.create 1024 in
  let fmt_v = function
    | None -> "-"
    | Some f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.0f" f
        else Printf.sprintf "%.6g" f
  in
  let shown =
    List.filter (fun r -> r.status <> Unchanged) report.rows
  in
  let name_w =
    List.fold_left (fun w r -> max w (String.length r.name)) 4 shown
  in
  if shown <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-*s  %14s  %14s  %8s  %s\n" name_w "name" "base"
         "current" "ratio" "status");
    List.iter
      (fun r ->
        let ratio =
          match (r.base, r.current) with
          | Some bv, Some c when bv > 0.0 -> Printf.sprintf "%.2fx" (c /. bv)
          | _ -> "-"
        in
        Buffer.add_string b
          (Printf.sprintf "%-*s  %14s  %14s  %8s  %s\n" name_w r.name
             (fmt_v r.base) (fmt_v r.current) ratio (status_label r.status)))
      shown
  end;
  let total = List.length report.rows in
  Buffer.add_string b
    (Printf.sprintf
       "%d series compared: %d unchanged, %d regressed, %d new in current, \
        %d missing in current\n"
       total
       (total - List.length shown)
       report.regressions report.additions report.missing);
  Buffer.contents b

(* What a value looks like, for exit-2 diagnostics: names the shape we
   detected so "base: malformed" becomes actionable. *)
let describe (v : Json.t) =
  match v with
  | Obj _ when Json.member "schema" v <> None -> (
      match Json.member "schema" v with
      | Some (Str s) -> Printf.sprintf "manifest with schema %S" s
      | _ -> "manifest-like object with a non-string schema tag")
  | Obj _ when Json.member "metrics" v <> None ->
      "object with a non-array \"metrics\" key"
  | Obj _ -> "JSON object (not a metrics snapshot or manifest)"
  | List _ -> "JSON array (not a bench result array)"
  | Null -> "JSON null"
  | Bool _ -> "JSON boolean"
  | Num _ -> "JSON number"
  | Str _ -> "JSON string"

let run ?threshold ?min_abs ?filter ?exact ~base ~current () =
  let load label path =
    match Json.of_file path with
    | Error e -> Error (Printf.sprintf "%s (%s): %s" label path e)
    | Ok v -> (
        (* Pre-validate each side so a format error names the offending
           file and the shape we saw, not just "base: malformed". *)
        match scalars v with
        | Ok _ -> Ok v
        | Error e ->
            Error
              (Printf.sprintf "%s (%s): %s — input is %s" label path e
                 (describe v)))
  in
  match (load "base" base, load "current" current) with
  | Error e, _ | _, Error e ->
      prerr_endline ("lrd metrics diff: " ^ e);
      2
  | Ok b, Ok c -> (
      match compare_values ?threshold ?min_abs ?filter ?exact b c with
      | Error e ->
          prerr_endline ("lrd metrics diff: " ^ e);
          2
      | Ok report ->
          print_string (render report);
          if report.regressions > 0 then 3 else 0)
