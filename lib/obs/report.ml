(* Offline analyzer for Chrome-trace journals (the files Obs.Trace
   exports and the CLI/bench write with --trace).  Everything here is a
   pure function of the journal's contents: timestamps come from the
   file, ordering is fixed by explicit sorts, and the JSON rendering
   goes through the deterministic Json printer — so the same journal
   always yields byte-identical report output, which is what makes the
   reports diffable across reruns and CI uploads. *)

let schema = "lrd-trace-report/1"

(* One journal event, timestamps in seconds (the chrome file stores
   microseconds).  Metadata events (ph "M") are dropped at parse time. *)
type event = {
  name : string;
  phase : char;  (* 'B' | 'E' | 'i' *)
  ts : float;
  tid : int;
  arg : int option;
}

type phase_stats = {
  phase_name : string;
  count : int;
  total : float;
  p50 : float;
  p95 : float;
  max : float;
}

type domain_util = {
  domain : int;
  busy : float;
  idle : float;
  utilization : float;
}

type pool_stats = { tasks : int; steals : int; steal_ratio : float }

type cell = { index : int; slices : int; seconds : float }

type critical_path = { path : int list; path_seconds : float }

type t = {
  events : int;
  dropped_unmatched : int;
  extent : float;
  phases : phase_stats list;
  domains : domain_util list;
  pool : pool_stats;
  cells : cell list;  (* slowest first, index ascending on ties *)
  critical : critical_path option;
}

(* ------------------------------------------------------------------ *)
(* Journal loading *)

let event_of_json v =
  match (Json.member "name" v, Json.member "ph" v, Json.member "ts" v) with
  | Some (Json.Str name), Some (Json.Str ph), Some ts_v when ph <> "M" -> (
      match Json.to_float_opt ts_v with
      | None -> None
      | Some ts_us ->
          let tid =
            match Option.bind (Json.member "tid" v) Json.to_float_opt with
            | Some f when Float.is_integer f -> int_of_float f
            | _ -> 0
          in
          let arg =
            match Json.member "args" v with
            | Some args -> (
                match Option.bind (Json.member "v" args) Json.to_float_opt with
                | Some f when Float.is_integer f -> Some (int_of_float f)
                | _ -> None)
            | None -> None
          in
          let phase =
            match ph with "B" -> 'B' | "E" -> 'E' | _ -> 'i'
          in
          Some { name; phase; ts = ts_us *. 1e-6; tid; arg })
  | _ -> None

let events_of_json v =
  match v with
  | Json.List entries -> Ok (List.filter_map event_of_json entries)
  | _ -> Error "not a Chrome trace journal (expected a top-level array)"

(* ------------------------------------------------------------------ *)
(* Quantiles over an ascending-sorted duration array: the conservative
   "value at ceil(q*n)" convention, exact and deterministic. *)

let quantile sorted ~q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let k = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (k - 1)))

(* Merge [lo, hi) intervals (sorted by lo) and sum their union length. *)
let union_length intervals =
  match List.sort (fun (a, _) (b, _) -> Float.compare a b) intervals with
  | [] -> 0.0
  | (lo0, hi0) :: rest ->
      let total, open_lo, open_hi =
        List.fold_left
          (fun (total, lo, hi) (a, b) ->
            if a <= hi then (total, lo, Float.max hi b)
            else (total +. (hi -. lo), a, b))
          (0.0, lo0, hi0) rest
      in
      total +. (open_hi -. open_lo)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let analyze events =
  (* Pair B/E slices per (tid, name) with a stack, so identically named
     spans may nest (solver/level does).  An E with no open B — the
     journal's ring evicted the B — is dropped and counted, as is a B
     left open at the end of the journal. *)
  let stacks : (int * string, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let durations : (string, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let depth : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let open_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let busy : (int, (float * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let tids = ref [] in
  let cell_time : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let cell_slices : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let warm : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let unmatched = ref 0 in
  let tasks = ref 0 and steals = ref 0 in
  let get tbl key mk =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v = mk () in
        Hashtbl.add tbl key v;
        v
  in
  List.iter
    (fun e ->
      if not (List.mem e.tid !tids) then tids := e.tid :: !tids;
      match e.phase with
      | 'B' ->
          if e.name = "pool/task" then incr tasks;
          let st = get stacks (e.tid, e.name) (fun () -> ref []) in
          st := e.ts :: !st;
          (* pool/idle slices are the workers' parked time — they pair
             into the phase table like any span but must not count as
             busy coverage. *)
          if e.name <> "pool/idle" then begin
            let d = get depth e.tid (fun () -> ref 0) in
            if !d = 0 then Hashtbl.replace open_ts e.tid e.ts;
            incr d
          end
      | 'E' -> (
          let st = get stacks (e.tid, e.name) (fun () -> ref []) in
          match !st with
          | [] -> incr unmatched
          | t0 :: rest ->
              st := rest;
              let dt = Float.max 0.0 (e.ts -. t0) in
              let ds = get durations e.name (fun () -> ref []) in
              ds := dt :: !ds;
              if e.name = "sweep/slice" then
                Option.iter
                  (fun i ->
                    Hashtbl.replace cell_time i
                      (Option.value ~default:0.0
                         (Hashtbl.find_opt cell_time i)
                      +. dt);
                    Hashtbl.replace cell_slices i
                      (Option.value ~default:0
                         (Hashtbl.find_opt cell_slices i)
                      + 1))
                  e.arg;
              if e.name <> "pool/idle" then begin
                let d = get depth e.tid (fun () -> ref 0) in
                if !d > 0 then begin
                  decr d;
                  if !d = 0 then
                    match Hashtbl.find_opt open_ts e.tid with
                    | Some lo ->
                        let b = get busy e.tid (fun () -> ref []) in
                        b := (lo, e.ts) :: !b
                    | None -> ()
                end
              end)
      | _ ->
          if e.name = "pool/steal" then incr steals;
          if e.name = "sweep/warm_start" then
            Option.iter (fun i -> Hashtbl.replace warm i ()) e.arg)
    events;
  (* A B still open at the end of the journal never became a slice. *)
  Hashtbl.iter (fun _ st -> unmatched := !unmatched + List.length !st) stacks;
  let ts_list = List.map (fun e -> e.ts) events in
  let extent =
    match ts_list with
    | [] -> 0.0
    | t :: rest ->
        let lo = List.fold_left Float.min t rest
        and hi = List.fold_left Float.max t rest in
        hi -. lo
  in
  let phases =
    Hashtbl.fold (fun name ds acc -> (name, !ds) :: acc) durations []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (phase_name, ds) ->
           let sorted = Array.of_list ds in
           Array.sort Float.compare sorted;
           {
             phase_name;
             count = Array.length sorted;
             total = Array.fold_left ( +. ) 0.0 sorted;
             p50 = quantile sorted ~q:0.5;
             p95 = quantile sorted ~q:0.95;
             max = sorted.(Array.length sorted - 1);
           })
  in
  let domains =
    List.sort compare !tids
    |> List.map (fun tid ->
           let b =
             match Hashtbl.find_opt busy tid with Some b -> !b | None -> []
           in
           let busy = union_length b in
           let idle = Float.max 0.0 (extent -. busy) in
           {
             domain = tid;
             busy;
             idle;
             utilization = (if extent > 0.0 then busy /. extent else 0.0);
           })
  in
  let pool =
    {
      tasks = !tasks;
      steals = !steals;
      steal_ratio =
        (if !tasks > 0 then float_of_int !steals /. float_of_int !tasks
         else 0.0);
    }
  in
  let cells =
    Hashtbl.fold
      (fun index seconds acc ->
        {
          index;
          slices =
            Option.value ~default:0 (Hashtbl.find_opt cell_slices index);
          seconds;
        }
        :: acc)
      cell_time []
    |> List.sort (fun a b ->
           match Float.compare b.seconds a.seconds with
           | 0 -> compare a.index b.index
           | c -> c)
  in
  (* Critical path: chain(i) = time(i) + chain(i - 1) when cell i was
     warm-started (the scheduler seeds cell i from cell i - 1, its left
     neighbour in the row — see Sweep.scheduled_surface).  Cold cells
     start fresh chains.  Computed in ascending index order so every
     predecessor is settled before its successor. *)
  let critical =
    if cells = [] then None
    else begin
      let by_index =
        List.sort (fun a b -> compare a.index b.index) cells
      in
      let chain : (int, float) Hashtbl.t = Hashtbl.create 64 in
      let best = ref (0, neg_infinity) in
      List.iter
        (fun c ->
          let prev =
            if Hashtbl.mem warm c.index then
              Option.value ~default:0.0
                (Hashtbl.find_opt chain (c.index - 1))
            else 0.0
          in
          let total = c.seconds +. prev in
          Hashtbl.replace chain c.index total;
          if total > snd !best then best := (c.index, total))
        by_index;
      let rec walk i acc =
        if Hashtbl.mem warm i && Hashtbl.mem chain (i - 1) then
          walk (i - 1) (i :: acc)
        else i :: acc
      in
      Some { path = walk (fst !best) []; path_seconds = snd !best }
    end
  in
  {
    events = List.length events;
    dropped_unmatched = !unmatched;
    extent;
    phases;
    domains;
    pool;
    cells;
    critical;
  }

let of_chrome_json v = Result.map analyze (events_of_json v)

let of_file path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok v -> (
      match of_chrome_json v with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok r -> Ok r)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let default_top = 10

let top_cells ~top t =
  List.filteri (fun i _ -> i < top) t.cells

let to_json ?(top = default_top) t =
  let num f = Json.Num f in
  let inum i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("events", inum t.events);
      ("unmatched_slices", inum t.dropped_unmatched);
      ("extent_seconds", num t.extent);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str p.phase_name);
                   ("count", inum p.count);
                   ("total_seconds", num p.total);
                   ("p50_seconds", num p.p50);
                   ("p95_seconds", num p.p95);
                   ("max_seconds", num p.max);
                 ])
             t.phases) );
      ( "domains",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("domain", inum d.domain);
                   ("busy_seconds", num d.busy);
                   ("idle_seconds", num d.idle);
                   ("utilization", num d.utilization);
                 ])
             t.domains) );
      ( "pool",
        Json.Obj
          [
            ("tasks", inum t.pool.tasks);
            ("steals", inum t.pool.steals);
            ("steal_ratio", num t.pool.steal_ratio);
          ] );
      ( "slowest_cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("cell", inum c.index);
                   ("slices", inum c.slices);
                   ("seconds", num c.seconds);
                 ])
             (top_cells ~top t)) );
      ( "critical_path",
        match t.critical with
        | None -> Json.Null
        | Some cp ->
            Json.Obj
              [
                ("cells", Json.List (List.map inum cp.path));
                ("seconds", num cp.path_seconds);
              ] );
    ]

let render ?(top = default_top) t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "trace report: %d events over %.6f s" t.events t.extent;
  if t.dropped_unmatched > 0 then
    pf " (%d unmatched slice halves)" t.dropped_unmatched;
  pf "\n\n";
  if t.phases <> [] then begin
    pf "%-28s %8s %12s %12s %12s %12s\n" "phase" "count" "total_s" "p50_s"
      "p95_s" "max_s";
    List.iter
      (fun p ->
        pf "%-28s %8d %12.6f %12.6f %12.6f %12.6f\n" p.phase_name p.count
          p.total p.p50 p.p95 p.max)
      t.phases;
    pf "\n"
  end;
  if t.domains <> [] then begin
    pf "%-8s %12s %12s %12s\n" "domain" "busy_s" "idle_s" "util";
    List.iter
      (fun d ->
        pf "%-8d %12.6f %12.6f %11.1f%%\n" d.domain d.busy d.idle
          (100.0 *. d.utilization))
      t.domains;
    pf "\n"
  end;
  if t.pool.tasks > 0 then
    pf "pool: %d tasks, %d steals (steal ratio %.3f)\n\n" t.pool.tasks
      t.pool.steals t.pool.steal_ratio;
  (match top_cells ~top t with
  | [] -> ()
  | cells ->
      pf "slowest cells (top %d of %d):\n" (List.length cells)
        (List.length t.cells);
      pf "%-8s %8s %12s\n" "cell" "slices" "seconds";
      List.iter
        (fun c -> pf "%-8d %8d %12.6f\n" c.index c.slices c.seconds)
        cells;
      pf "\n");
  (match t.critical with
  | None -> ()
  | Some cp ->
      pf "critical path: %.6f s through %d cell(s): %s\n" cp.path_seconds
        (List.length cp.path)
        (String.concat " -> " (List.map string_of_int cp.path)));
  Buffer.contents b

(* A/B comparison: per-phase totals side by side, plus the headline
   aggregates.  Layout mirrors Diff.render so the two read alike. *)
let render_compare ~base ~current =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let names =
    List.sort_uniq String.compare
      (List.map (fun p -> p.phase_name) base.phases
      @ List.map (fun p -> p.phase_name) current.phases)
  in
  let find r name =
    List.find_opt (fun p -> p.phase_name = name) r.phases
  in
  pf "%-28s %12s %12s %8s\n" "phase (total_s)" "base" "current" "ratio";
  List.iter
    (fun name ->
      let fmt_v = function
        | None -> "-"
        | Some p -> Printf.sprintf "%.6f" p.total
      in
      let bp = find base name and cp = find current name in
      let ratio =
        match (bp, cp) with
        | Some bp, Some cp when bp.total > 0.0 ->
            Printf.sprintf "%.2fx" (cp.total /. bp.total)
        | _ -> "-"
      in
      pf "%-28s %12s %12s %8s\n" name (fmt_v bp) (fmt_v cp) ratio)
    names;
  let headline label f =
    let bv = f base and cv = f current in
    pf "%-28s %12.6f %12.6f %8s\n" label bv cv
      (if bv > 0.0 then Printf.sprintf "%.2fx" (cv /. bv) else "-")
  in
  headline "journal extent (s)" (fun r -> r.extent);
  headline "critical path (s)" (fun r ->
      match r.critical with Some cp -> cp.path_seconds | None -> 0.0);
  headline "pool steal ratio" (fun r -> r.pool.steal_ratio);
  Buffer.contents b
