(* Telemetry subsystem.  See the .mli for the contract; the points that
   shape the implementation:

   - The disabled path must be one branch and zero allocation, so every
     recording primitive opens with [if !enabled_flag then ...] and the
     flag is a plain [bool ref] (a single mutable word; racy reads are
     benign and the OCaml memory model rules out tearing).

   - Enabled recording must be lock-free, so counters, histograms and
     trajectories keep one cell per domain behind a [Domain.DLS] key,
     exactly like [Lrd_parallel.Arena]'s per-domain memo tables.  The
     DLS initializer registers the new cell in the instrument's cell
     list under the global registry mutex — a once-per-domain cost.

   - Floats that must be updated without allocation live in [float
     array] cells, never in mutable record fields mixed with non-float
     fields (such fields are boxed, and storing to them allocates). *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Registry *)

type histogram_data = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

type value =
  | Counter of { total : int; per_domain : (int * int) list }
  | Gauge of float option
  | Histogram of histogram_data
  | Trajectory of (int * float array) list

type snapshot = (string * value) list

(* One mutex guards instrument creation, per-domain cell registration
   and snapshotting.  Recording never takes it. *)
let lock = Mutex.create ()

type instrument = {
  name : string;
  kind : string;  (* for duplicate-name diagnostics *)
  read : unit -> value;  (* called under [lock] *)
  clear : unit -> unit;  (* called under [lock] *)
}

let instruments : (string, instrument) Hashtbl.t = Hashtbl.create 64

(* Each instrument module memoizes its own typed table by name; this
   shared helper holds the cross-kind bookkeeping.  Must be called
   under [lock]. *)
let register_locked ~kind ~name ~read ~clear =
  (match Hashtbl.find_opt instruments name with
  | Some existing ->
      invalid_arg
        (Printf.sprintf
           "Obs: instrument %S already registered as a %s (requested %s)" name
           existing.kind kind)
  | None -> ());
  Hashtbl.add instruments name { name; kind; read; clear }

let domain_id () = (Domain.self () :> int)

(* Per-domain cells: a DLS key whose initializer also appends the fresh
   cell to the instrument's cell list so snapshots can reach every
   domain's cell.  Cells of finished domains stay in the list (their
   counts remain part of the totals). *)
let dls_cells make_cell =
  let cells : (int * 'a) list ref = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let cell = make_cell () in
        let id = domain_id () in
        Mutex.protect lock (fun () -> cells := (id, cell) :: !cells);
        cell)
  in
  (key, cells)

let sorted_cells cells =
  List.sort (fun (a, _) (b, _) -> compare a b) !cells

(* ------------------------------------------------------------------ *)
(* Counter *)

module Counter = struct
  type cell = { mutable n : int }

  type t = { key : cell Domain.DLS.key; cells : (int * cell) list ref }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let key, cells = dls_cells (fun () -> { n = 0 }) in
            let t = { key; cells } in
            register_locked ~kind:"counter" ~name
              ~read:(fun () ->
                let per_domain =
                  List.map (fun (id, c) -> (id, c.n)) (sorted_cells t.cells)
                in
                let total =
                  List.fold_left (fun acc (_, n) -> acc + n) 0 per_domain
                in
                Counter { total; per_domain })
              ~clear:(fun () -> List.iter (fun (_, c) -> c.n <- 0) !(t.cells));
            Hashtbl.add table name t;
            t)

  let add t k =
    if !enabled_flag then begin
      if k < 0 then invalid_arg "Obs.Counter.add: negative increment";
      let c = Domain.DLS.get t.key in
      c.n <- c.n + k
    end

  let incr t = add t 1

  let value t =
    Mutex.protect lock (fun () ->
        List.fold_left (fun acc (_, c) -> acc + c.n) 0 !(t.cells))

  let per_domain t =
    Mutex.protect lock (fun () ->
        List.map (fun (id, c) -> (id, c.n)) (sorted_cells t.cells))
end

(* ------------------------------------------------------------------ *)
(* Gauge *)

module Gauge = struct
  (* The float lives in a one-slot float array so [set] stores unboxed;
     [written] is a separate mutable bool (a word store). *)
  type t = { slot : float array; mutable written : bool }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let t = { slot = [| 0.0 |]; written = false } in
            register_locked ~kind:"gauge" ~name
              ~read:(fun () ->
                Gauge (if t.written then Some t.slot.(0) else None))
              ~clear:(fun () ->
                t.slot.(0) <- 0.0;
                t.written <- false);
            Hashtbl.add table name t;
            t)

  let set t v =
    if !enabled_flag then begin
      t.slot.(0) <- v;
      t.written <- true
    end

  let value t = if t.written then Some t.slot.(0) else None
end

(* ------------------------------------------------------------------ *)
(* Histogram *)

module Histogram = struct
  let min_exponent = -30
  let max_exponent = 30

  (* bucket 0: underflow (v < 2^min_exponent, including <= 0);
     bucket i >= 1: exponent e = min_exponent + i - 1, range
     [2^e, 2^(e+1)); values >= 2^(max_exponent+1) clamp into the top. *)
  let bucket_count = max_exponent - min_exponent + 2

  let bucket_index v =
    if not (v >= ldexp 1.0 min_exponent) then 0 (* incl. nan, <= 0 *)
    else if v >= ldexp 1.0 (max_exponent + 1) then bucket_count - 1
    else begin
      (* frexp is exact: v = m * 2^e with m in [0.5, 1), so
         floor(log2 v) = e - 1 even at bucket boundaries. *)
      let _, e = Float.frexp v in
      e - 1 - min_exponent + 1
    end

  let bucket_lower i =
    if i < 0 || i >= bucket_count then
      invalid_arg "Obs.Histogram.bucket_lower: bucket out of range"
    else if i = 0 then neg_infinity
    else ldexp 1.0 (min_exponent + i - 1)

  type cell = {
    mutable n : int;
    stats : float array;  (* sum, min, max — unboxed float stores *)
    counts : int array;
  }

  type t = { key : cell Domain.DLS.key; cells : (int * cell) list ref }

  let fresh_cell () =
    { n = 0; stats = [| 0.0; infinity; neg_infinity |]; counts = Array.make bucket_count 0 }

  let merged t =
    let counts = Array.make bucket_count 0 in
    let count = ref 0 and sum = ref 0.0 in
    let mn = ref infinity and mx = ref neg_infinity in
    List.iter
      (fun (_, c) ->
        count := !count + c.n;
        sum := !sum +. c.stats.(0);
        if c.stats.(1) < !mn then mn := c.stats.(1);
        if c.stats.(2) > !mx then mx := c.stats.(2);
        Array.iteri (fun i k -> counts.(i) <- counts.(i) + k) c.counts)
      !(t.cells);
    let buckets = ref [] in
    for i = bucket_count - 1 downto 0 do
      if counts.(i) > 0 then buckets := (bucket_lower i, counts.(i)) :: !buckets
    done;
    { count = !count; sum = !sum; min = !mn; max = !mx; buckets = !buckets }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let key, cells = dls_cells fresh_cell in
            let t = { key; cells } in
            register_locked ~kind:"histogram" ~name
              ~read:(fun () -> Histogram (merged t))
              ~clear:(fun () ->
                List.iter
                  (fun (_, c) ->
                    c.n <- 0;
                    c.stats.(0) <- 0.0;
                    c.stats.(1) <- infinity;
                    c.stats.(2) <- neg_infinity;
                    Array.fill c.counts 0 bucket_count 0)
                  !(t.cells));
            Hashtbl.add table name t;
            t)

  let observe t v =
    if !enabled_flag then begin
      let c = Domain.DLS.get t.key in
      c.n <- c.n + 1;
      c.stats.(0) <- c.stats.(0) +. v;
      if v < c.stats.(1) then c.stats.(1) <- v;
      if v > c.stats.(2) then c.stats.(2) <- v;
      let i = bucket_index v in
      c.counts.(i) <- c.counts.(i) + 1
    end

  let count t =
    Mutex.protect lock (fun () ->
        List.fold_left (fun acc (_, c) -> acc + c.n) 0 !(t.cells))
end

(* ------------------------------------------------------------------ *)
(* Trajectory *)

module Trajectory = struct
  type cell = { buf : float array; mutable pos : int; mutable len : int }

  type t = { key : cell Domain.DLS.key; cells : (int * cell) list ref }

  let chronological c =
    let cap = Array.length c.buf in
    if c.len < cap then Array.sub c.buf 0 c.len
    else Array.init cap (fun i -> c.buf.((c.pos + i) mod cap))

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(capacity = 64) name =
    if capacity < 1 then invalid_arg "Obs.Trajectory.make: capacity < 1";
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some t -> t
        | None ->
            let key, cells =
              dls_cells (fun () ->
                  { buf = Array.make capacity 0.0; pos = 0; len = 0 })
            in
            let t = { key; cells } in
            register_locked ~kind:"trajectory" ~name
              ~read:(fun () ->
                Trajectory
                  (List.map
                     (fun (id, c) -> (id, chronological c))
                     (sorted_cells t.cells)))
              ~clear:(fun () ->
                List.iter
                  (fun (_, c) ->
                    c.pos <- 0;
                    c.len <- 0)
                  !(t.cells));
            Hashtbl.add table name t;
            t)

  let record t v =
    if !enabled_flag then begin
      let c = Domain.DLS.get t.key in
      let cap = Array.length c.buf in
      c.buf.(c.pos) <- v;
      c.pos <- (c.pos + 1) mod cap;
      if c.len < cap then c.len <- c.len + 1
    end
end

(* ------------------------------------------------------------------ *)
(* Span *)

module Span = struct
  type t = Histogram.t

  let make name = Histogram.make name
  let start () = if !enabled_flag then now () else neg_infinity

  let stop t t0 =
    if !enabled_flag && t0 > neg_infinity then
      Histogram.observe t (now () -. t0)

  let time t f =
    if not !enabled_flag then f ()
    else begin
      let t0 = now () in
      match f () with
      | r ->
          Histogram.observe t (now () -. t0);
          r
      | exception e ->
          Histogram.observe t (now () -. t0);
          raise e
    end
end

(* ------------------------------------------------------------------ *)
(* Snapshot and export *)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ i -> i.clear ()) instruments)

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun _ i acc -> (i.name, i.read ()) :: acc) instruments []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let find s name = List.assoc_opt name s

let histogram_quantile h ~q =
  if h.count = 0 then nan
  else begin
    let target = q *. float_of_int h.count in
    let rec go acc = function
      | [] -> h.max
      | (lower, n) :: rest ->
          let acc = acc + n in
          if float_of_int acc >= target then
            if lower = neg_infinity then h.min else lower
          else go acc rest
    in
    go 0 h.buckets
  end

let pp_text fmt s =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter { total; per_domain } ->
          Format.fprintf fmt "counter    %-40s %d" name total;
          if List.length per_domain > 1 then begin
            Format.fprintf fmt "  [";
            List.iteri
              (fun i (id, n) ->
                Format.fprintf fmt "%sd%d:%d" (if i > 0 then " " else "") id n)
              per_domain;
            Format.fprintf fmt "]"
          end;
          Format.fprintf fmt "@."
      | Gauge g ->
          Format.fprintf fmt "gauge      %-40s %s@." name
            (match g with None -> "unset" | Some v -> Printf.sprintf "%.6g" v)
      | Histogram h ->
          if h.count = 0 then
            Format.fprintf fmt "histogram  %-40s empty@." name
          else
            Format.fprintf fmt
              "histogram  %-40s count=%d mean=%.4g min=%.4g p50=%.4g \
               p90=%.4g max=%.4g@."
              name h.count
              (h.sum /. float_of_int h.count)
              h.min
              (histogram_quantile h ~q:0.5)
              (histogram_quantile h ~q:0.9)
              h.max
      | Trajectory domains ->
          Format.fprintf fmt "trajectory %-40s" name;
          if domains = [] then Format.fprintf fmt " empty@."
          else begin
            List.iter
              (fun (id, points) ->
                Format.fprintf fmt " d%d:[" id;
                Array.iteri
                  (fun i p ->
                    Format.fprintf fmt "%s%.4g" (if i > 0 then " " else "") p)
                  points;
                Format.fprintf fmt "]")
              domains;
            Format.fprintf fmt "@."
          end)
    s

(* JSON rendering: fixed key order, sorted instruments, %.17g floats
   (shortest round-trippable form is not needed — determinism is), and
   non-finite floats as null since JSON has no spelling for them. *)
let json_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json s =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\": [\n";
  let last = List.length s - 1 in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b "  {\"name\": ";
      json_string b name;
      (match v with
      | Counter { total; per_domain } ->
          Buffer.add_string b ", \"kind\": \"counter\", \"total\": ";
          Buffer.add_string b (string_of_int total);
          Buffer.add_string b ", \"per_domain\": [";
          List.iteri
            (fun j (id, n) ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b
                (Printf.sprintf "{\"domain\": %d, \"value\": %d}" id n))
            per_domain;
          Buffer.add_string b "]"
      | Gauge g ->
          Buffer.add_string b ", \"kind\": \"gauge\", \"value\": ";
          (match g with
          | None -> Buffer.add_string b "null"
          | Some v -> json_float b v)
      | Histogram h ->
          Buffer.add_string b ", \"kind\": \"histogram\", \"count\": ";
          Buffer.add_string b (string_of_int h.count);
          Buffer.add_string b ", \"sum\": ";
          json_float b h.sum;
          if h.count > 0 then begin
            Buffer.add_string b ", \"min\": ";
            json_float b h.min;
            Buffer.add_string b ", \"max\": ";
            json_float b h.max
          end;
          Buffer.add_string b ", \"buckets\": [";
          List.iteri
            (fun j (lower, n) ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b "{\"lower\": ";
              json_float b lower;
              Buffer.add_string b (Printf.sprintf ", \"count\": %d}" n))
            h.buckets;
          Buffer.add_string b "]"
      | Trajectory domains ->
          Buffer.add_string b ", \"kind\": \"trajectory\", \"domains\": [";
          List.iteri
            (fun j (id, points) ->
              if j > 0 then Buffer.add_string b ", ";
              Buffer.add_string b
                (Printf.sprintf "{\"domain\": %d, \"points\": [" id);
              Array.iteri
                (fun k p ->
                  if k > 0 then Buffer.add_string b ", ";
                  json_float b p)
                points;
              Buffer.add_string b "]}")
            domains;
          Buffer.add_string b "]");
      Buffer.add_string b (if i = last then "}\n" else "},\n"))
    s;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Trace: structured event journal.

   One ring per domain (not per instrument): a trace is a single merged
   timeline, and per-domain rings keep recording lock-free exactly like
   the metric cells above.  Each ring holds the most recent [capacity]
   events in parallel arrays (string pointers, a phase byte, unboxed
   floats, ints), so recording allocates nothing even when enabled —
   the only allocation on the whole enabled path is the once-per-domain
   ring creation.  Event order within a domain is the record order (a
   per-domain sequence number survives eviction because the ring always
   holds the *last* [len] records); the cross-domain merge sorts by
   (timestamp, domain, sequence), which is deterministic for any fixed
   recorded contents. *)

module Trace = struct
  let trace_flag = ref false
  let enabled () = !trace_flag
  let set_enabled b = trace_flag := b

  (* Timestamps are seconds since this process epoch, so they are small
     (microsecond precision survives the float) and trace viewers start
     near zero. *)
  let epoch = Unix.gettimeofday ()

  type phase = Begin | End | Instant

  type event = {
    name : string;
    phase : phase;
    ts : float;
    domain : int;
    seq : int;
    arg : int option;
  }

  (* [min_int] marks "no payload" so the arg slot stays an unboxed int
     store; an explicit [~arg:min_int] is indistinguishable from no arg,
     which no caller has a reason to pass. *)
  let no_arg = min_int

  type cell = {
    mutable names : string array;
    mutable phases : Bytes.t;
    mutable ts : float array;
    mutable args : int array;
    mutable pos : int;  (* next write index *)
    mutable len : int;  (* live events, <= capacity *)
    mutable next_seq : int;  (* per-domain events ever recorded *)
    mutable dropped : int;  (* events evicted by ring overflow *)
  }

  let default_capacity = 8192
  let capacity_ref = ref default_capacity
  let capacity () = !capacity_ref

  let alloc_cell cap =
    {
      names = Array.make cap "";
      phases = Bytes.make cap 'i';
      ts = Array.make cap 0.0;
      args = Array.make cap no_arg;
      pos = 0;
      len = 0;
      next_seq = 0;
      dropped = 0;
    }

  let cells : (int * cell) list ref = ref []

  let key =
    Domain.DLS.new_key (fun () ->
        Mutex.protect lock (fun () ->
            let cell = alloc_cell !capacity_ref in
            cells := (domain_id (), cell) :: !cells;
            cell))

  let record phase name arg =
    let c = Domain.DLS.get key in
    let cap = Array.length c.names in
    if c.len = cap then c.dropped <- c.dropped + 1 else c.len <- c.len + 1;
    let p = c.pos in
    Array.unsafe_set c.names p name;
    Bytes.unsafe_set c.phases p phase;
    Array.unsafe_set c.ts p (Unix.gettimeofday () -. epoch);
    Array.unsafe_set c.args p arg;
    c.pos <- (p + 1) mod cap;
    c.next_seq <- c.next_seq + 1

  let instant ?(arg = no_arg) name = if !trace_flag then record 'i' name arg
  let begin_ ?(arg = no_arg) name = if !trace_flag then record 'B' name arg
  let end_ ?(arg = no_arg) name = if !trace_flag then record 'E' name arg

  let with_span ?arg name f =
    if not !trace_flag then f ()
    else begin
      begin_ ?arg name;
      match f () with
      | r ->
          end_ ?arg name;
          r
      | exception e ->
          end_ ?arg name;
          raise e
    end

  (* Oldest-first events of one ring.  When the ring has wrapped the
     oldest live record sits at [pos]; its sequence number is
     [next_seq - len]. *)
  let cell_events id c =
    let cap = Array.length c.names in
    List.init c.len (fun k ->
        let p = if c.len < cap then k else (c.pos + k) mod cap in
        let a = c.args.(p) in
        {
          name = c.names.(p);
          phase =
            (match Bytes.get c.phases p with
            | 'B' -> Begin
            | 'E' -> End
            | _ -> Instant);
          ts = c.ts.(p);
          domain = id;
          seq = c.next_seq - c.len + k;
          arg = (if a = no_arg then None else Some a);
        })

  let events () =
    Mutex.protect lock (fun () ->
        List.concat_map (fun (id, c) -> cell_events id c) !cells)
    |> List.sort (fun (a : event) (b : event) ->
           compare (a.ts, a.domain, a.seq) (b.ts, b.domain, b.seq))

  let dropped () =
    Mutex.protect lock (fun () ->
        List.fold_left (fun acc (_, c) -> acc + c.dropped) 0 !cells)

  let reset () =
    Mutex.protect lock (fun () ->
        List.iter
          (fun (_, c) ->
            c.pos <- 0;
            c.len <- 0;
            c.next_seq <- 0;
            c.dropped <- 0)
          !cells)

  let set_capacity n =
    if n < 1 then invalid_arg "Obs.Trace.set_capacity: capacity < 1";
    Mutex.protect lock (fun () ->
        capacity_ref := n;
        List.iter
          (fun (_, c) ->
            c.names <- Array.make n "";
            c.phases <- Bytes.make n 'i';
            c.ts <- Array.make n 0.0;
            c.args <- Array.make n no_arg;
            c.pos <- 0;
            c.len <- 0;
            c.next_seq <- 0;
            c.dropped <- 0)
          !cells)

  (* Chrome trace-event JSON: a flat array of event objects (the format
     Perfetto and chrome://tracing load directly).  Domains map to tids
     under one pid; metadata events name the tracks.  Timestamps are
     microseconds. *)
  let to_chrome_json () =
    let evs = events () in
    let tids =
      List.sort_uniq compare (List.map (fun e -> e.domain) evs)
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b "[\n";
    let first = ref true in
    let sep () =
      if !first then first := false else Buffer.add_string b ",\n"
    in
    sep ();
    Buffer.add_string b
      "{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": 0, \
       \"tid\": 0, \"args\": {\"name\": \"lrd\"}}";
    List.iter
      (fun tid ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, \
              \"pid\": 0, \"tid\": %d, \"args\": {\"name\": \"domain %d\"}}"
             tid tid))
      tids;
    List.iter
      (fun e ->
        sep ();
        Buffer.add_string b "{\"name\": ";
        json_string b e.name;
        let ph, scope =
          match e.phase with
          | Begin -> ("B", "")
          | End -> ("E", "")
          | Instant -> ("i", ", \"s\": \"t\"")
        in
        Buffer.add_string b
          (Printf.sprintf ", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 0, \
                           \"tid\": %d%s"
             ph (e.ts *. 1e6) e.domain scope);
        (match e.arg with
        | None -> ()
        | Some v ->
            Buffer.add_string b (Printf.sprintf ", \"args\": {\"v\": %d}" v));
        Buffer.add_string b "}")
      evs;
    Buffer.add_string b "\n]\n";
    Buffer.contents b
end
