(** Telemetry: counters, gauges, log-bucketed histograms, bounded value
    trajectories, and lightweight wall-clock spans, aggregated per
    domain.

    Design constraints, in priority order:

    {ol
    {- {b The disabled path costs one branch.}  Every recording
       primitive first reads a single global flag and returns
       immediately when it is off, touching no per-domain state and
       allocating nothing.  Call sites on allocation-sensitive paths
       that pass floats should use the guarded idiom
       [if Obs.enabled () then Obs.Histogram.observe h v] so the float
       argument is never even boxed when telemetry is off (without
       flambda, a cross-module float argument boxes at the call).  The
       zero-allocation contract is pinned by a [Gc.minor_words] test.}
    {- {b The enabled hot path takes no lock.}  Counters, histograms
       and trajectories keep one private cell per domain (the
       {!Lrd_parallel.Arena} [Domain.DLS] pattern), so recording from
       inside {!Lrd_parallel.Pool} tasks never contends.  A global
       mutex is taken only on first use of an instrument on a domain
       (cell registration) and at {!snapshot} time.}
    {- {b Snapshots are deterministic.}  A snapshot lists every
       registered instrument sorted by name, whether or not it was ever
       recorded, and {!to_json} renders it byte-identically for equal
       snapshots.}}

    Aggregation across domains is read-racy by design: {!snapshot}
    reads other domains' cells without synchronization.  OCaml's memory
    model guarantees such reads see some written word (no tearing), so
    a snapshot taken while a pool is running can lag by a few updates
    but is never corrupt.  Snapshots taken while the system is quiet
    (the normal case: after a run, before exit) are exact. *)

val enabled : unit -> bool
(** Whether recording is on.  Off by default. *)

val set_enabled : bool -> unit
(** Flip the global switch.  Toggling while other domains are recording
    is safe (the flag is a single word); readings started before the
    flip may still land. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — exposed so instrumented
    layers can time regions without their own unix dependency. *)

val reset : unit -> unit
(** Zero every cell of every instrument (counts, histogram buckets,
    trajectories, gauge values).  Instruments stay registered.  Meant
    for tests and for the CLI between runs; not safe concurrently with
    enabled recording on other domains. *)

module Counter : sig
  type t

  val make : string -> t
  (** [make name] is the counter registered under [name], creating it
      on first call (subsequent calls return the same instrument).
      @raise Invalid_argument if [name] is registered as another kind. *)

  val incr : t -> unit
  (** Add one to the calling domain's cell.  No-op when disabled. *)

  val add : t -> int -> unit
  (** Add [k] (which must be nonnegative) to the calling domain's
      cell.  No-op when disabled. *)

  val value : t -> int
  (** Sum across all domains' cells. *)

  val per_domain : t -> (int * int) list
  (** [(domain_id, count)] pairs sorted by domain id, one per domain
      that recorded while enabled. *)
end

module Gauge : sig
  type t
  (** A last-write-wins instantaneous value, shared across domains (a
      gauge is written rarely — cache hit rates, last bound gap —
      so it does not need per-domain cells). *)

  val make : string -> t
  val set : t -> float -> unit
  val value : t -> float option
  (** [None] until the first enabled {!set}. *)
end

module Histogram : sig
  type t
  (** Power-of-two log-bucketed distribution of nonnegative values
      (latencies in seconds on every built-in use).  Bucket [i] with
      exponent [e] counts values in [[2^e, 2^{e+1})]; exponents span
      [min_exponent .. max_exponent], with one underflow bucket below
      (everything [< 2^min_exponent], including zero and negatives) and
      values at or above [2^{max_exponent+1}] clamped into the top
      bucket.  Per-domain cells also track count, sum, min and max. *)

  val min_exponent : int
  (** -30: the lowest bucket lower bound is [2^-30 s] (≈ 0.93 ns). *)

  val max_exponent : int
  (** 30: the top bucket starts at [2^30 s] (≈ 34 years). *)

  val bucket_count : int
  (** Number of buckets including the underflow bucket. *)

  val bucket_index : float -> int
  (** Bucket (0-based, 0 = underflow) a value falls in.  Exact at
      bucket boundaries: [bucket_index (ldexp 1.0 e)] is the bucket
      whose lower bound is [2^e]. *)

  val bucket_lower : int -> float
  (** Lower bound of bucket [i]; [neg_infinity] for the underflow
      bucket. *)

  val make : string -> t
  val observe : t -> float -> unit
  (** Record one value into the calling domain's cell.  No-op when
      disabled — but use the guarded idiom (see the module preamble) on
      allocation-sensitive paths. *)

  val count : t -> int
  (** Total observations across domains. *)
end

module Trajectory : sig
  type t
  (** A bounded ring of the most recent values, per domain — for
      ordered diagnostics like the solver's bound-gap trajectory where
      a histogram would destroy the ordering.  Each domain keeps its
      own chronological ring of the last [capacity] values. *)

  val make : ?capacity:int -> string -> t
  (** Default capacity 64 per domain.  The capacity of an existing
      instrument is not changed by a later [make] with a different
      [?capacity]. *)

  val record : t -> float -> unit
  (** Append to the calling domain's ring (evicting the oldest value
      once full).  No-op when disabled; use the guarded idiom on
      allocation-sensitive paths. *)
end

module Span : sig
  type t
  (** A named wall-clock region: durations land in a {!Histogram} of
      seconds registered under the span's name. *)

  val make : string -> t

  val start : unit -> float
  (** The current time when enabled, [neg_infinity] when disabled.
      Allocation-free when disabled (the sentinel is a static
      constant). *)

  val stop : t -> float -> unit
  (** [stop t t0] records [now () - t0] if recording was enabled at
      both ends (a [t0] from a disabled {!start} is ignored). *)

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] runs [f] and records its duration, also on exception.
      When disabled this is just [f ()] (the closure the caller built
      is the only cost). *)
end

(** {1 Snapshots and export} *)

type histogram_data = {
  count : int;
  sum : float;
  min : float;  (** Meaningless when [count = 0]. *)
  max : float;
  buckets : (float * int) list;
      (** [(bucket lower bound, count)] for nonzero buckets only, in
          increasing bound order; the underflow bucket reports bound
          [neg_infinity]. *)
}

type value =
  | Counter of { total : int; per_domain : (int * int) list }
  | Gauge of float option
  | Histogram of histogram_data
  | Trajectory of (int * float array) list
      (** Per-domain rings, oldest value first, sorted by domain id. *)

type snapshot = (string * value) list
(** Every registered instrument, sorted by name. *)

val snapshot : unit -> snapshot

val find : snapshot -> string -> value option

val histogram_quantile : histogram_data -> q:float -> float
(** Lower bound of the bucket containing the [q]-quantile (a
    conservative estimate, exact to within one bucket width).  [nan]
    for an empty histogram. *)

val pp_text : Format.formatter -> snapshot -> unit
(** One line per instrument: totals and per-domain breakdown for
    counters, count/mean/min/p50/p90/max for histograms, the recent
    points for trajectories. *)

val to_json : snapshot -> string
(** Deterministic JSON: instruments sorted by name, fixed key order,
    floats printed with round-trippable precision, non-finite floats
    rendered as [null].  Equal snapshots yield byte-identical
    strings. *)

(** {1 Timeline tracing}

    A structured event journal, independent of the metric instruments
    above: each domain records begin/end/instant events into a private
    bounded ring ([Domain.DLS], lock-free, allocation-free once the
    domain's ring exists), and the rings merge into one deterministic
    stream at export time.  Tracing has its own on/off switch — metrics
    and traces can be enabled independently — and {!reset} above does
    {e not} clear the journal (use {!Trace.reset}). *)

module Trace : sig
  val enabled : unit -> bool
  (** Whether trace recording is on.  Off by default. *)

  val set_enabled : bool -> unit

  val capacity : unit -> int
  (** Per-domain ring capacity (default 8192 events).  Once a ring is
      full the oldest events are evicted and counted in {!dropped}. *)

  val set_capacity : int -> unit
  (** Reallocate every existing ring (and future rings) to hold [n]
      events, clearing all recorded events and drop counts.  Not safe
      concurrently with enabled recording on other domains.
      @raise Invalid_argument if [n < 1]. *)

  val instant : ?arg:int -> string -> unit
  (** Record a point event.  [name] should be a static string (the ring
      stores the pointer); [?arg] is an optional small integer payload
      (grid size, cell index...).  No-op when disabled — but use the
      guarded idiom [if Obs.Trace.enabled () then Obs.Trace.instant ...]
      on allocation-sensitive paths so the [Some arg] option is never
      built when tracing is off. *)

  val begin_ : ?arg:int -> string -> unit
  (** Open a duration slice on the calling domain's track.  Every
      [begin_] must be balanced by an {!end_} with the same name on the
      same domain (Chrome trace-event B/E semantics). *)

  val end_ : ?arg:int -> string -> unit

  val with_span : ?arg:int -> string -> (unit -> 'a) -> 'a
  (** [with_span name f] brackets [f] with {!begin_}/{!end_}, also on
      exception.  When disabled this is just [f ()]. *)

  type phase = Begin | End | Instant

  type event = {
    name : string;
    phase : phase;
    ts : float;  (** Seconds since process start. *)
    domain : int;
    seq : int;  (** Per-domain record index (survives ring eviction). *)
    arg : int option;
  }

  val events : unit -> event list
  (** All live events merged across domains, sorted by
      [(ts, domain, seq)] — deterministic for fixed recorded
      contents. *)

  val dropped : unit -> int
  (** Total events evicted by ring overflow, across domains. *)

  val reset : unit -> unit
  (** Clear every ring and drop count.  Rings stay allocated.  Not safe
      concurrently with enabled recording on other domains. *)

  val to_chrome_json : unit -> string
  (** The merged stream as Chrome trace-event JSON (the array form),
      loadable in Perfetto or [chrome://tracing]: one object per event
      with [name]/[ph]/[ts] (µs)/[pid]/[tid] keys, domains as tid
      tracks, plus [thread_name] metadata events naming each track. *)
end
