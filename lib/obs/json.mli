(** A minimal JSON tree, parser and printer (stdlib-only — the repo
    deliberately avoids a yojson dependency).

    Used by the provenance manifests ({!Manifest}) and the metrics diff
    engine ({!Diff}); the hot-path snapshot/trace exporters in {!Obs}
    keep their direct-to-buffer printers and do not build trees.

    The parser accepts strict JSON plus the non-finite literals [nan],
    [inf]/[Infinity] and their negations, because historical bench
    output printed NaN timings literally; the printer never emits them
    (non-finite numbers render as [null]). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Key order is preserved. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-whitespace is an error).  The error string carries a byte
    offset. *)

val parse_exn : string -> t
(** @raise Failure on malformed input. *)

val to_string : ?pretty:bool -> t -> string
(** [pretty:false] (default) is compact one-line JSON.  [pretty:true]
    indents objects and lists one element per line (two-space indent) —
    the manifest format, chosen so timestamp fields sit on their own
    lines and are easy to filter out when comparing runs.  Both forms
    are deterministic: equal trees yield byte-identical strings. *)

val member : string -> t -> t option
(** First value bound to the key in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Num] as-is, [Null] as [None]; anything else [None]. *)

val of_file : string -> (t, string) result
(** Read and parse a file; I/O errors are reported like parse errors. *)

val to_file : ?pretty:bool -> string -> t -> unit
