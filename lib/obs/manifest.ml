let schema = "lrd-manifest/1"
let shard_schema = "lrd-shard-manifest/1"

(* Read the subprocess's FULL output before closing: closing the pipe
   early can SIGPIPE a still-writing git (e.g. [status --porcelain] in
   a large dirty tree) and turn a good answer into a failure. *)
let command_output cmd =
  match Unix.open_process_in cmd with
  | ic -> (
      let out = In_channel.input_all ic in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> Some (String.trim out)
      | _ -> None
      | exception _ -> None)
  | exception _ -> None

let git_rev_memo =
  lazy (command_output "git rev-parse HEAD 2>/dev/null")

let git_dirty_memo =
  lazy
    (match command_output "git status --porcelain 2>/dev/null" with
    | Some out -> Some (out <> "")
    | None -> None)

let git_rev () = Lazy.force git_rev_memo
let git_dirty () = Lazy.force git_dirty_memo

let make ?schema:(tag = schema) ?(figures = []) ?(parameters = []) ?(extra = [])
    ?wall_seconds ?metrics ~tool () =
  let opt_num = function Some f -> Json.Num f | None -> Json.Null in
  Json.Obj
    ([
       ("schema", Json.Str tag);
       ("tool", Str tool);
       ("figures", List (List.map (fun f -> Json.Str f) figures));
       ("parameters", Obj parameters);
     ]
    @ extra
    @ [
        ("ocaml_version", Json.Str Sys.ocaml_version);
        ("os_type", Str Sys.os_type);
        ("word_size", Num (float_of_int Sys.word_size));
        ( "argv",
          List (Array.to_list (Array.map (fun a -> Json.Str a) Sys.argv)) );
        ( "git_rev",
          match git_rev () with Some r -> Str r | None -> Null );
        ( "git_dirty",
          match git_dirty () with Some d -> Bool d | None -> Null );
        ("metrics_enabled", Bool (Obs.enabled ()));
        ("generated_at_unix", Num (Unix.gettimeofday ()));
        ("wall_seconds", opt_num wall_seconds);
        ("metrics", Option.value metrics ~default:Json.Null);
      ])

let write path v = Json.to_file ~pretty:true path v
