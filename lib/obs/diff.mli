(** Metrics diff engine: align two snapshots by instrument name and
    report deltas, with a regression verdict.

    Three snapshot formats are auto-detected per file, so any pair can
    be compared:

    - an {!Obs.to_json} metrics snapshot
      ([{"metrics": [{"name", "kind", ...}]}]) — counters compare by
      [total], gauges by [value], histograms by [count] (and [sum] as
      ["<name>/sum"] when nonzero); trajectories are ordered diagnostics
      with no scalar meaning and are skipped;
    - a bench micro baseline ([[{"name", "ns_per_run", ...}]]) —
      kernels compare by [ns_per_run];
    - a {!Manifest} — its embedded [metrics] snapshot is compared, after
      checking the [schema] tags match.

    The regression rule, designed for "bigger is worse" series (timings,
    drop counts): current [> threshold ×] base {e and} the absolute
    increase [>= min_abs].  Decreases are improvements, never
    regressions.  A name present in the base only is a warning, not a
    failure — so an [--only]-filtered bench run can be diffed against
    the full committed baseline; a name present in the current only is
    new coverage and counts as an addition, not as missing. *)

type status =
  | Unchanged
  | Improved  (** Decreased by more than the thresholds allow. *)
  | Changed  (** Moved, but within the regression thresholds. *)
  | Regressed
  | Missing_current  (** In the base snapshot only (warning). *)
  | Missing_base  (** In the current snapshot only (warning). *)

type row = {
  name : string;
  base : float option;
  current : float option;
  status : status;
}

type report = {
  rows : row list;  (** Sorted by name. *)
  regressions : int;
  missing : int;
      (** Names in the base snapshot only — the warning bucket. *)
  additions : int;
      (** Names in the current snapshot only: new coverage, reported as
          an improvement in the summary, never as missing. *)
}

val scalars : Json.t -> ((string * float) list, string) result
(** Extract the comparable series from a snapshot in any of the three
    formats.  [Error] when the format is not recognized. *)

val compare_values :
  ?threshold:float ->
  ?min_abs:float ->
  ?filter:string ->
  ?exact:bool ->
  Json.t ->
  Json.t ->
  (report, string) result
(** [compare_values base current] with [threshold] defaulting to [2.0]
    (a >2x increase regresses) and [min_abs] to [0.] (any increase past
    the ratio counts).  [filter] keeps only series whose name contains
    the given substring — e.g. ["kernel/"] gates just the CPU
    micro-kernels, which are stable enough for a hard CI check while
    the solver cells stay warn-only.  [exact] (default [false]) switches
    to equivalence gating: any numeric difference on a series present in
    both snapshots — in either direction, of any size — is a regression.
    Used to assert that a merged sharded run reproduced the whole run's
    deterministic counters; one-sided names keep their warning
    semantics. *)

val render : report -> string
(** A fixed-width text table (one row per changed/missing name, plus a
    summary line) — what [lrd metrics diff] prints. *)

val run :
  ?threshold:float ->
  ?min_abs:float ->
  ?filter:string ->
  ?exact:bool ->
  base:string ->
  current:string ->
  unit ->
  int
(** Read the two files, print {!render} to stdout (or the error to
    stderr) and return the process exit code: [0] clean, [3] at least
    one regression, [2] unreadable/unrecognized input.  Exit-2 messages
    name the offending file and the shape that was detected (manifest
    schema, bare object, array...).  [filter] and [exact] as in
    {!compare_values}. *)
