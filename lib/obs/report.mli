(** Offline analyzer for Chrome-trace journals written by
    {!Obs.Trace.to_chrome_json} (CLI/bench [--trace] output).

    All analysis is a pure function of the journal: the same file always
    produces byte-identical {!to_json} output, so reports can be diffed
    across reruns and archived as CI artifacts. *)

type phase_stats = {
  phase_name : string;
  count : int;
  total : float;  (** summed duration, seconds *)
  p50 : float;
  p95 : float;
  max : float;
}

type domain_util = {
  domain : int;  (** trace [tid] *)
  busy : float;  (** union of span-covered time, seconds *)
  idle : float;  (** journal extent minus busy *)
  utilization : float;  (** busy / extent, 0 when the journal is empty *)
}

type pool_stats = {
  tasks : int;  (** [pool/task] begin events *)
  steals : int;  (** [pool/steal] instants *)
  steal_ratio : float;  (** steals / tasks, 0 when no tasks *)
}

type cell = {
  index : int;  (** flat sweep index [iy * nx + ix] *)
  slices : int;  (** number of [sweep/slice] spans *)
  seconds : float;  (** summed slice duration *)
}

type critical_path = {
  path : int list;  (** cell indices, dependency order *)
  path_seconds : float;
}

type t = {
  events : int;  (** non-metadata journal events *)
  dropped_unmatched : int;  (** slice halves lost to ring eviction *)
  extent : float;  (** last minus first timestamp, seconds *)
  phases : phase_stats list;  (** sorted by name *)
  domains : domain_util list;  (** sorted by domain id *)
  pool : pool_stats;
  cells : cell list;  (** slowest first *)
  critical : critical_path option;
      (** longest dependent chain of cells, linking cell [i] to [i - 1]
          through [sweep/warm_start] edges; [None] without sweep data *)
}

val schema : string
(** ["lrd-trace-report/1"] — the [schema] field of {!to_json}. *)

val of_file : string -> (t, string) result
(** Load and analyze a Chrome-trace journal; errors name the file. *)

val of_chrome_json : Json.t -> (t, string) result
(** Analyze an already-parsed journal (top-level event array). *)

val to_json : ?top:int -> t -> Json.t
(** Deterministic report document ([schema] {!schema}); [top] bounds the
    [slowest_cells] list (default 10). *)

val render : ?top:int -> t -> string
(** Human-readable multi-section text summary. *)

val render_compare : base:t -> current:t -> string
(** A/B table of per-phase totals plus headline aggregates. *)
