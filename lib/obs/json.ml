type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string with a mutable
   position.  Errors raise [Fail] internally and surface as [Error]. *)

exception Fail of int * string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))
let peek st = if st.pos < String.length st.src then st.src.[st.pos] else '\255'

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if peek st = c then st.pos <- st.pos + 1
  else fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* \uXXXX escapes decode to UTF-8; unpaired surrogates decode as-is
   (WTF-8), which keeps parse(print(x)) total without a validity
   pass. *)
let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents b
    else if c = '\\' then begin
      (if st.pos >= String.length st.src then fail st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
           let hex4 () =
             if st.pos + 4 > String.length st.src then
               fail st "bad \\u escape";
             let hex = String.sub st.src st.pos 4 in
             st.pos <- st.pos + 4;
             try int_of_string ("0x" ^ hex)
             with _ -> fail st "bad \\u escape"
           in
           let code = hex4 () in
           (* A high surrogate followed by an escaped low surrogate is
              one astral codepoint; anything else falls through to the
              WTF-8 single-unit encoding. *)
           if
             code >= 0xD800 && code <= 0xDBFF
             && st.pos + 2 <= String.length st.src
             && st.src.[st.pos] = '\\'
             && st.src.[st.pos + 1] = 'u'
           then begin
             let mark = st.pos in
             st.pos <- st.pos + 2;
             let lo = hex4 () in
             if lo >= 0xDC00 && lo <= 0xDFFF then
               add_utf8 b
                 (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00))
             else begin
               st.pos <- mark;
               add_utf8 b code
             end
           end
           else add_utf8 b code
       | _ -> fail st "bad escape");
      go ()
    end
    else begin
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let digits () =
    while
      match peek st with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done
  in
  if peek st = '-' then st.pos <- st.pos + 1;
  digits ();
  if peek st = '.' then begin
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | 'e' | 'E' ->
      st.pos <- st.pos + 1;
      (match peek st with '+' | '-' -> st.pos <- st.pos + 1 | _ -> ());
      digits ()
  | _ -> ());
  if st.pos = start then fail st "expected a value";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elements [])
      end
  | '"' -> Str (parse_string st)
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | 'n' ->
      if
        st.pos + 3 <= String.length st.src
        && String.sub st.src st.pos 3 = "nan"
      then begin
        st.pos <- st.pos + 3;
        Num Float.nan
      end
      else literal st "null" Null
  | 'N' -> literal st "NaN" (Num Float.nan)
  | 'i' -> literal st "inf" (Num Float.infinity)
  | 'I' -> literal st "Infinity" (Num Float.infinity)
  | '-'
    when st.pos + 1 < String.length st.src
         && (st.src.[st.pos + 1] = 'i' || st.src.[st.pos + 1] = 'I') ->
      st.pos <- st.pos + 1;
      if peek st = 'i' then literal st "inf" (Num Float.neg_infinity)
      else literal st "Infinity" (Num Float.neg_infinity)
  | _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos < String.length s then
        Error (Printf.sprintf "byte %d: trailing garbage" st.pos)
      else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error e -> failwith ("Json.parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Integers print without an exponent or trailing ".", other floats
   with the shortest of %.15g/%.16g/%.17g that round-trips — so equal
   trees always print byte-identically and parse back to equal trees. *)
let print_num b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else begin
    let s15 = Printf.sprintf "%.15g" f in
    let s =
      if float_of_string s15 = f then s15
      else
        let s16 = Printf.sprintf "%.16g" f in
        if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
    in
    Buffer.add_string b s
  end

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let indent n = for _ = 1 to n do Buffer.add_string b "  " done in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> print_num b f
    | Str s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            if pretty then begin
              Buffer.add_char b '\n';
              indent (depth + 1)
            end
            else if i > 0 then Buffer.add_char b ' ';
            go (depth + 1) x)
          xs;
        if pretty then begin
          Buffer.add_char b '\n';
          indent depth
        end;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            if pretty then begin
              Buffer.add_char b '\n';
              indent (depth + 1)
            end
            else if i > 0 then Buffer.add_char b ' ';
            escape b k;
            Buffer.add_string b ": ";
            go (depth + 1) x)
          kvs;
        if pretty then begin
          Buffer.add_char b '\n';
          indent depth
        end;
        Buffer.add_char b '}'
  in
  go 0 v;
  if pretty then Buffer.add_char b '\n';
  Buffer.contents b

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float_opt = function Num f -> Some f | _ -> None

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> parse s
  | exception Sys_error e -> Error e

let to_file ?pretty path v =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string ?pretty v))
