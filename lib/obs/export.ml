(* Snapshot export beyond the native JSON: OpenMetrics/Prometheus text
   exposition, and a periodic JSONL ticker that streams timestamped
   snapshots to a file while a run is in flight. *)

(* ------------------------------------------------------------------ *)
(* OpenMetrics *)

(* Metric names may only use [a-zA-Z0-9_:] and must not start with a
   digit; everything is prefixed lrd_ so solver/solve_seconds becomes
   lrd_solver_solve_seconds.  Sanitization is not invertible (label
   escaping below is). *)
let metric_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "lrd_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape_label_value s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let openmetrics snapshot =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (name, value) ->
      let m = metric_name name in
      match value with
      | Obs.Counter { total; per_domain } ->
          pf "# TYPE %s counter\n" m;
          if per_domain = [] then pf "%s_total %d\n" m total
          else
            List.iter
              (fun (d, n) ->
                pf "%s_total{domain=\"%s\"} %d\n" m
                  (escape_label_value (string_of_int d))
                  n)
              per_domain
      | Obs.Gauge v -> (
          match v with
          | None -> ()  (* never set: no sample line to expose *)
          | Some v when not (Float.is_finite v) -> ()
          | Some v ->
              pf "# TYPE %s gauge\n" m;
              pf "%s %s\n" m (num v))
      | Obs.Histogram h ->
          pf "# TYPE %s histogram\n" m;
          let cum = ref 0 in
          List.iter
            (fun (lower, count) ->
              cum := !cum + count;
              (* Obs buckets are [2^e, 2^{e+1}): the exposition upper
                 bound of the bucket at lower 2^e is 2^{e+1}; the
                 underflow bucket (lower -inf) tops out at the lowest
                 real bound. *)
              let upper =
                if lower = neg_infinity then
                  ldexp 1.0 Obs.Histogram.min_exponent
                else lower *. 2.0
              in
              pf "%s_bucket{le=\"%s\"} %d\n" m
                (escape_label_value (num upper))
                !cum)
            h.Obs.buckets;
          pf "%s_bucket{le=\"+Inf\"} %d\n" m h.Obs.count;
          if Float.is_finite h.Obs.sum then
            pf "%s_sum %s\n" m (num h.Obs.sum);
          pf "%s_count %d\n" m h.Obs.count
      | Obs.Trajectory _ -> ()  (* ordered rings have no exposition *))
    snapshot;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSONL metrics ticker *)

(* One line per tick: the native snapshot JSON flattened onto one line
   with a wall-clock "ts" key spliced in front of "metrics".  A tick is
   written synchronously at start and at stop, so even runs shorter
   than one interval leave a two-line series. *)

let tick_line () =
  let s = Obs.to_json (Obs.snapshot ()) in
  let flat = String.concat "" (String.split_on_char '\n' s) in
  (* flat is "{\"metrics\": [...]}" — splice ts after the brace. *)
  Printf.sprintf "{\"ts\": %.6f, %s\n" (Obs.now ())
    (String.sub flat 1 (String.length flat - 1))

let write_tick oc =
  Resource.sample ();
  output_string oc (tick_line ());
  flush oc

(* The worker is a systhread, not a Domain, on purpose: a second
   domain — even one asleep in [Unix.sleepf] — forces every minor
   collection onto the multi-domain stop-the-world path, which costs
   allocation-heavy runs tens of percent of wall clock on small hosts.
   A sleeping systhread shares the spawning domain and costs only its
   wakeups (a runtime-lock bounce every slice). *)
type ticker = {
  stop : bool Atomic.t;
  wake : Unix.file_descr;  (* write end of the worker's self-pipe *)
  worker : Thread.t;
  channel : out_channel;
}

let running : ticker option ref = ref None

let stop_ticker () =
  match !running with
  | None -> ()
  | Some t ->
      Atomic.set t.stop true;
      (* Wake the worker out of its select immediately; EPIPE et al.
         are impossible while we hold the read end open in the worker,
         but be defensive anyway. *)
      (try ignore (Unix.write t.wake (Bytes.make 1 '!') 0 1)
       with Unix.Unix_error _ -> ());
      Thread.join t.worker;
      (try Unix.close t.wake with Unix.Unix_error _ -> ());
      write_tick t.channel;
      close_out t.channel;
      running := None

let start_ticker ~interval ~path =
  if interval <= 0.0 || not (Float.is_finite interval) then
    Error (Printf.sprintf "invalid metrics interval %g (want > 0)" interval)
  else begin
    stop_ticker ();
    match open_out path with
    | exception Sys_error e -> Error e
    | oc ->
        write_tick oc;
        let stop = Atomic.make false in
        let rd, wr = Unix.pipe ~cloexec:true () in
        let worker =
          Thread.create
            (fun () ->
              (* One select per tick, blocking the whole interval: no
                 periodic wakeups stealing runtime-lock handoffs from
                 the measured code.  stop_ticker writes a byte to the
                 pipe, so shutdown is immediate regardless of how long
                 the interval is. *)
              let rec loop next =
                if not (Atomic.get stop) then begin
                  let timeout = Float.max 0.0 (next -. Obs.now ()) in
                  let ready, _, _ =
                    try Unix.select [ rd ] [] [] timeout
                    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
                  in
                  if ready = [] && not (Atomic.get stop) then begin
                    write_tick oc;
                    loop (next +. interval)
                  end
                end
              in
              loop (Obs.now () +. interval);
              Unix.close rd)
            ()
        in
        running := Some { stop; wake = wr; worker; channel = oc };
        Ok ()
  end
