(** Run provenance manifests.

    An experiment run (a [lrd experiment] invocation, a bench mode, a
    sweep) writes one [*.manifest.json] next to its outputs recording
    everything needed to re-run and diff it: which figures ran, the full
    parameter set (seed, RNG split scheme, jobs, solver parameters,
    grids), the code identity (git rev + dirty flag, OCaml version),
    wall time, and the final metrics snapshot.

    Determinism contract: two runs with the same seed and parameters
    produce byte-identical manifests {e except} for the two timestamp
    fields, [generated_at_unix] and [wall_seconds], which the pretty
    printer places on lines of their own so a diff can filter them
    (e.g. [grep -v -e generated_at_unix -e wall_seconds]).  The
    embedded metrics snapshot is part of the contract only when
    telemetry is disabled (its deterministic all-zero state) or the
    run's recording is itself deterministic. *)

val schema : string
(** ["lrd-manifest/1"] — bumped on any key change. *)

val shard_schema : string
(** ["lrd-shard-manifest/1"] — the per-shard checkpoint manifest written
    by [lrd experiment --shard k/n]: the base manifest key set plus a
    ["shard"] section (index, count, owned cell count, grid shapes and
    the parameter digest the merge step validates against). *)

val make :
  ?schema:string ->
  ?figures:string list ->
  ?parameters:(string * Json.t) list ->
  ?extra:(string * Json.t) list ->
  ?wall_seconds:float ->
  ?metrics:Json.t ->
  tool:string ->
  unit ->
  Json.t
(** Compose a manifest object with a fixed key order: [schema], [tool],
    [figures], [parameters], the [extra] pairs (if any — e.g. the
    ["shard"] section under {!shard_schema}), [ocaml_version],
    [os_type], [word_size], [argv], [git_rev], [git_dirty],
    [metrics_enabled], [generated_at_unix], [wall_seconds], [metrics].
    [schema] defaults to {!schema}; [git_rev] / [git_dirty] are [null]
    outside a git checkout. *)

val write : string -> Json.t -> unit
(** Pretty-print to a file. *)

val git_rev : unit -> string option
(** HEAD commit hash, memoized; [None] when git or the repo is
    unavailable. *)

val git_dirty : unit -> bool option
(** Whether the working tree has uncommitted changes, memoized. *)
