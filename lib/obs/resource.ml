(* Sampled GC/resource telemetry on top of the Obs gauge machinery,
   plus per-region minor-allocation attribution.

   The gauges are registered lazily on the first enabled sample so a
   process that never samples (telemetry off, or on but purely
   span/counter-driven) keeps its snapshots free of gc/* entries.  The
   disabled paths are one branch and allocation-free, matching the
   Obs contract pinned by the Gc.minor_words test. *)

type gauges = {
  minor_words : Obs.Gauge.t;
  promoted_words : Obs.Gauge.t;
  major_words : Obs.Gauge.t;
  minor_collections : Obs.Gauge.t;
  major_collections : Obs.Gauge.t;
  heap_words : Obs.Gauge.t;
  compactions : Obs.Gauge.t;
}

let gauges =
  lazy
    {
      minor_words = Obs.Gauge.make "gc/minor_words";
      promoted_words = Obs.Gauge.make "gc/promoted_words";
      major_words = Obs.Gauge.make "gc/major_words";
      minor_collections = Obs.Gauge.make "gc/minor_collections";
      major_collections = Obs.Gauge.make "gc/major_collections";
      heap_words = Obs.Gauge.make "gc/heap_words";
      compactions = Obs.Gauge.make "gc/compactions";
    }

let sample () =
  if Obs.enabled () then begin
    let g = Lazy.force gauges in
    let st = Gc.quick_stat () in
    Obs.Gauge.set g.minor_words st.Gc.minor_words;
    Obs.Gauge.set g.promoted_words st.Gc.promoted_words;
    Obs.Gauge.set g.major_words st.Gc.major_words;
    Obs.Gauge.set g.minor_collections (float_of_int st.Gc.minor_collections);
    Obs.Gauge.set g.major_collections (float_of_int st.Gc.major_collections);
    Obs.Gauge.set g.heap_words (float_of_int st.Gc.heap_words);
    Obs.Gauge.set g.compactions (float_of_int st.Gc.compactions)
  end

module Alloc = struct
  type t = Obs.Counter.t

  let make name = Obs.Counter.make name

  (* Same sentinel protocol as Obs.Span.start: neg_infinity (a static
     constant, so no boxing) marks a start taken while disabled, and
     stop ignores it even if recording was enabled in between. *)
  let start () = if Obs.enabled () then Gc.minor_words () else neg_infinity

  let stop t w0 =
    if Obs.enabled () && w0 > neg_infinity then begin
      let dw = Gc.minor_words () -. w0 in
      if dw > 0.0 then Obs.Counter.add t (int_of_float dw)
    end

  let value t = Obs.Counter.value t
end
