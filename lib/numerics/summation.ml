type accumulator = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.0; compensation = 0.0 }

let reset acc =
  acc.sum <- 0.0;
  acc.compensation <- 0.0

(* Neumaier's variant of Kahan summation: also compensates when the
   running sum is smaller than the incoming term. *)
let add acc x =
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.compensation <- acc.compensation +. (acc.sum -. t +. x)
  else acc.compensation <- acc.compensation +. (x -. t +. acc.sum);
  acc.sum <- t

let total acc = acc.sum +. acc.compensation

let add_slice acc a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Summation.add_slice: slice out of bounds";
  for i = pos to pos + len - 1 do
    add acc (Array.unsafe_get a i)
  done

let kahan_slice a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Summation.kahan_slice: slice out of bounds";
  let acc = create () in
  for i = pos to pos + len - 1 do
    add acc a.(i)
  done;
  total acc

let kahan a = kahan_slice a ~pos:0 ~len:(Array.length a)
