(** Planned complex and real-input fast Fourier transforms.

    The transform operates in place on a pair of arrays holding the real
    and imaginary parts.  The forward transform computes
    [X_k = sum_n x_n exp(-2 i pi k n / N)]; the inverse transform
    includes the [1/N] normalization so that [inverse (forward x) = x]
    up to rounding.

    Two API levels are provided.  The planned API ({!make_plan},
    {!make_any_plan}, {!forward_ip}, {!inverse_ip}) precomputes the
    twiddle-factor tables once and then transforms caller-owned buffers
    with zero heap allocation per call — this is what the solver's
    convolution engine iterates hundreds of thousands of times.  The
    plain {!forward}/{!inverse} calls keep the historical power-of-two
    signature and reuse memoized plans internally.

    {!Real} transforms real-valued signals of even fast length through
    one half-size complex transform, producing the half-spectrum
    [X_0 .. X_{n/2}] that conjugate symmetry completes. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val next_power_of_two : int -> int
(** [next_power_of_two n] is the smallest power of two [>= max 1 n]. *)

val is_fast_size : int -> bool
(** True iff [n] is of the form [2^a * f] with [f] in [{1, 3, 5, 15}] —
    the sizes served by the mixed-radix engine without Bluestein. *)

val good_size : int -> int
(** [good_size n] is the cheapest fast size [>= max 1 n] under a
    measured per-point cost model (odd-radix split stages cost a few
    percent per point over the pure power-of-two butterflies, so a
    slightly larger power of two can beat e.g. a [15 * 2^k] grid).
    Consecutive fast sizes are within 25% of each other, so
    near-power-of-two grids stop paying the 2x padding penalty. *)

type vec =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed float vectors shared with the solver's Bigarray state. *)

type plan
(** Precomputed twiddle factors (plus, beyond powers of two, decimation
    scratch) for one transform size.  Power-of-two plans are immutable
    and can be shared freely; plans from {!make_any_plan} for other
    sizes own scratch buffers and must not be used concurrently. *)

val make_plan : int -> plan
(** [make_plan n] builds a plan for size-[n] transforms.  Cost is
    [O(n)] including [n - 1] trigonometric evaluations; every factor is
    computed by a direct cos/sin call, so planned transforms avoid the
    error-accumulating recurrence of a twiddle-on-the-fly butterfly.
    @raise Invalid_argument unless [n] is a power of two. *)

val make_any_plan : int -> plan
(** [make_any_plan n] builds a plan for any positive [n]: a radix-2
    plan when [n] is a power of two, a mixed-radix plan peeling odd
    radices 3 and 5 when {!is_fast_size}, and a Bluestein (chirp-z)
    plan over a power-of-two grid [>= 2 n - 1] otherwise.  Non-power-
    of-two plans own scratch and must not be shared across domains. *)

val size : plan -> int
(** The transform size the plan was built for. *)

val forward_ip : plan -> re:float array -> im:float array -> unit
(** In-place forward transform using the plan's tables.  Performs no
    heap allocation.  @raise Invalid_argument if the array lengths do
    not match the plan size. *)

val inverse_ip : plan -> re:float array -> im:float array -> unit
(** In-place inverse transform with [1/N] normalization; allocation-free
    like {!forward_ip}.  @raise Invalid_argument as for {!forward_ip}. *)

val forward : re:float array -> im:float array -> unit
(** In-place forward transform.  Reuses an internally memoized plan for
    the given size (sizes are powers of two, so the memo table stays
    tiny).  @raise Invalid_argument if the arrays have different lengths
    or a length that is not a power of two. *)

val inverse : re:float array -> im:float array -> unit
(** In-place inverse transform with [1/N] normalization.
    @raise Invalid_argument as for {!forward}. *)

val dft_naive : re:float array -> im:float array -> float array * float array
(** Direct O(N^2) discrete Fourier transform of the given complex signal,
    returned as fresh arrays.  Any length is accepted.  Intended as a test
    oracle for {!forward} and {!forward_ip}. *)

(** Real-input transforms via the pack-real trick: a real signal of
    even fast length [n] is transformed by one complex FFT of size
    [n/2] plus an O(n) split pass, about half the work of a padded
    complex transform.  Only the half-spectrum [X_0 .. X_{n/2}] is
    produced/consumed; the upper half is its conjugate mirror.  Plans
    own scratch and must not be used concurrently. *)
module Real : sig
  type t

  val make_plan : int -> t
  (** [make_plan n] plans real transforms of size [n].
      @raise Invalid_argument unless [n] is even and [n/2] satisfies
      {!is_fast_size}. *)

  val cached_plan : int -> t
  (** Per-domain memoized {!make_plan}: real plans hold mutable
      scratch, so the memo table lives in domain-local storage and
      never shares a plan between domains. *)

  val size : t -> int
  (** The signal length [n]. *)

  val spectrum_length : t -> int
  (** [n/2 + 1], the number of independent spectrum bins. *)

  val forward_ip :
    t ->
    signal:float array ->
    len:int ->
    spec_re:float array ->
    spec_im:float array ->
    unit
  (** Transform [signal.(0 .. len - 1)], implicitly zero-extended to
      the plan size, into the half-spectrum [spec_re/spec_im.(0 ..
      n/2)].  Allocation-free.  @raise Invalid_argument if [len]
      exceeds the plan size or a buffer is too short. *)

  val inverse_ip :
    t ->
    spec_re:float array ->
    spec_im:float array ->
    signal:float array ->
    len:int ->
    unit
  (** Inverse of {!forward_ip} with [1/n] normalization, writing the
      first [len] samples of the reconstructed signal. *)

  val synthesize_ip :
    t ->
    spec_re:float array ->
    spec_im:float array ->
    signal:float array ->
    len:int ->
    unit
  (** [synthesize_ip] evaluates the UNnormalized sum
      [y_j = sum_k X_k exp(-2 i pi j k / n)] of a Hermitian spectrum
      given by its half [X_0 .. X_{n/2}] — the Davies–Harte synthesis
      step — writing the first [len] samples. *)

  val forward_big :
    t -> signal:vec -> len:int -> spec_re:float array -> spec_im:float array -> unit
  (** {!forward_ip} reading the signal from a Bigarray vector. *)

  val inverse_big :
    t -> spec_re:float array -> spec_im:float array -> signal:vec -> len:int -> unit
  (** {!inverse_ip} writing the signal into a Bigarray vector. *)
end
