(** Compensated summation.

    The solver iterates thousands of convolutions on probability vectors
    whose entries span ten orders of magnitude (loss rates down to 1e-10
    matter, per the paper's stopping rule), so plain left-to-right sums are
    not good enough for the normalization and tail-mass accumulations. *)

val kahan : float array -> float
(** Kahan-Babuska (Neumaier) compensated sum of the whole array. *)

val kahan_slice : float array -> pos:int -> len:int -> float
(** Compensated sum of [len] elements starting at [pos].
    @raise Invalid_argument on out-of-bounds slices. *)

type accumulator
(** Mutable compensated accumulator for streaming sums.  Fields are
    unboxed floats, so a long-lived accumulator can be {!reset} and
    refilled with zero heap allocation — the solver's steady-state loop
    depends on this. *)

val create : unit -> accumulator
val add : accumulator -> float -> unit
val total : accumulator -> float

val reset : accumulator -> unit
(** Clears the accumulator for reuse without allocating a new one. *)

val add_slice : accumulator -> float array -> pos:int -> len:int -> unit
(** Adds [len] elements starting at [pos] to the accumulator;
    allocation-free.  @raise Invalid_argument on out-of-bounds slices. *)
