let direct a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let out = Array.make (na + nb - 1) 0.0 in
    for i = 0 to na - 1 do
      let ai = a.(i) in
      if ai <> 0.0 then
        for j = 0 to nb - 1 do
          out.(i + j) <- out.(i + j) +. (ai *. b.(j))
        done
    done;
    out
  end

let direct_into a b ~dst =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Convolution.direct_into: empty input";
  let out_len = na + nb - 1 in
  if Array.length dst < out_len then
    invalid_arg "Convolution.direct_into: dst too short";
  Array.fill dst 0 out_len 0.0;
  for i = 0 to na - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0.0 then
      for j = 0 to nb - 1 do
        let k = i + j in
        Array.unsafe_set dst k
          (Array.unsafe_get dst k +. (ai *. Array.unsafe_get b j))
      done
  done

(* The smallest even fast size >= want whose half is also fast — what a
   real-input transform of a linear convolution needs.  Every even fast
   size is twice a fast size, so this is exact, and consecutive fast
   sizes are within 25% of each other: near-power-of-two grids stop
   paying the 2x power-of-two padding penalty. *)
let real_transform_size_for want = 2 * Fft.good_size ((want + 1) / 2)

let fft a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let out_len = na + nb - 1 in
    let n = real_transform_size_for out_len in
    let rp = Fft.Real.cached_plan n in
    let bins = Fft.Real.spectrum_length rp in
    let are = Array.make bins 0.0 and aim = Array.make bins 0.0 in
    let bre = Array.make bins 0.0 and bim = Array.make bins 0.0 in
    Fft.Real.forward_ip rp ~signal:a ~len:na ~spec_re:are ~spec_im:aim;
    Fft.Real.forward_ip rp ~signal:b ~len:nb ~spec_re:bre ~spec_im:bim;
    for i = 0 to bins - 1 do
      let r = (are.(i) *. bre.(i)) -. (aim.(i) *. bim.(i)) in
      let im = (are.(i) *. bim.(i)) +. (aim.(i) *. bre.(i)) in
      are.(i) <- r;
      aim.(i) <- im
    done;
    let out = Array.make out_len 0.0 in
    Fft.Real.inverse_ip rp ~spec_re:are ~spec_im:aim ~signal:out ~len:out_len;
    out
  end

(* The single crossover heuristic shared by [auto] and the solver
   (previously the two used different thresholds: 4096 here, an
   unrelated bin-count cutoff of 64 there).  Re-measured on the planned
   dual-channel path at solver shapes (signal m+1 against kernel 2m+1):
   the schoolbook loop wins clearly below a length product of ~1.5k,
   the FFT wins clearly above ~4k, and the band between is within noise
   of even, so the conservative end of the measured band is kept. *)
let fft_product_threshold = 4096

let prefer_fft ~na ~nb = na * nb > fft_product_threshold

(* Crossover for kernels whose transform size is FIXED regardless of how
   little direct work the call needs — the autocovariance estimator
   transforms m = next_pow2 (2 n) points whether it wants 1 lag or n.
   Calibrated from the same measured constant: at the 64x64 break-even
   behind [fft_product_threshold], [fft_product_threshold] direct
   multiply-adds match a forward/inverse pair at size 128 (7 bits), so
   one transform point-bit costs threshold / (2 * 128 * 7) of them. *)
let prefer_fft_fixed ~transform_size ~direct_ops =
  if transform_size <= 0 then
    invalid_arg "Convolution.prefer_fft_fixed: size must be positive";
  let bits =
    (* ceil log2: fast sizes sit between powers of two, so round up. *)
    let b = ref 0 and v = ref 1 in
    while !v < transform_size do
      incr b;
      v := !v lsl 1
    done;
    max 1 !b
  in
  let transform_point_bits = float_of_int (2 * transform_size * bits) in
  float_of_int direct_ops
  > float_of_int fft_product_threshold /. (2.0 *. 128.0 *. 7.0)
    *. transform_point_bits

let auto a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else if prefer_fft ~na ~nb then fft a b
  else direct a b

(* ------------------------------------------------------------------ *)
(* Planned real convolution against a fixed kernel.

   The plan owns the kernel's half-spectrum, a real-transform plan, and
   half-spectrum scratch, so [execute] performs no heap allocation in
   steady state: pack the (zero-extended) signal straight into the
   half-size transform, multiply the n/2 + 1 independent bins in one
   fused pass (conjugate symmetry makes the upper half free), and
   interleave the inverse directly into [dst].

   A plan built with an explicit [size] smaller than the full linear
   length computes CIRCULAR convolutions: the kernel is wrapped mod
   [size] at build time, which is what the solver's aliased Lindley
   step wants.  Such a plan refuses the linear [execute]. *)

type real_plan = {
  kernel_len : int;
  max_signal : int;
  n : int;  (* transform size *)
  linear : bool;  (* n covers na + nk - 1: [execute] output is linear *)
  rfft : Fft.Real.t;
  kre : float array;  (* kernel half-spectrum, length n/2 + 1 *)
  kim : float array;
  sre : float array;  (* signal half-spectrum scratch *)
  sim : float array;
}

type plan = real_plan

let make_real_plan ?size ~kernel ~max_signal () =
  let nk = Array.length kernel in
  if nk = 0 then invalid_arg "Convolution.make_plan: empty kernel";
  if max_signal < 1 then invalid_arg "Convolution.make_plan: max_signal < 1";
  let full = nk + max_signal - 1 in
  let n = match size with None -> real_transform_size_for full | Some s -> s in
  if n < max_signal then
    invalid_arg "Convolution.make_real_plan: size smaller than max_signal";
  let rfft = Fft.Real.make_plan n in
  let bins = Fft.Real.spectrum_length rfft in
  let kre = Array.make bins 0.0 and kim = Array.make bins 0.0 in
  if nk <= n then
    Fft.Real.forward_ip rfft ~signal:kernel ~len:nk ~spec_re:kre ~spec_im:kim
  else begin
    (* Circular plan shorter than the kernel: wrap the kernel mod n. *)
    let wrapped = Array.make n 0.0 in
    for i = 0 to nk - 1 do
      let j = i mod n in
      wrapped.(j) <- wrapped.(j) +. kernel.(i)
    done;
    Fft.Real.forward_ip rfft ~signal:wrapped ~len:n ~spec_re:kre ~spec_im:kim
  end;
  {
    kernel_len = nk;
    max_signal;
    n;
    linear = n >= full;
    rfft;
    kre;
    kim;
    sre = Array.make bins 0.0;
    sim = Array.make bins 0.0;
  }

let make_plan ~kernel ~max_signal = make_real_plan ~kernel ~max_signal ()
let real_transform_size plan = plan.n

(* The fused half-spectrum pass shared by every execute flavor. *)
let multiply_spectra plan =
  let kre = plan.kre and kim = plan.kim in
  let sre = plan.sre and sim = plan.sim in
  for i = 0 to Array.length sre - 1 do
    let ar = Array.unsafe_get sre i and ai = Array.unsafe_get sim i in
    let br = Array.unsafe_get kre i and bi = Array.unsafe_get kim i in
    Array.unsafe_set sre i ((ar *. br) -. (ai *. bi));
    Array.unsafe_set sim i ((ar *. bi) +. (ai *. br))
  done

let execute plan a ~dst =
  let na = Array.length a in
  if na = 0 then invalid_arg "Convolution.execute: empty signal";
  if na > plan.max_signal then
    invalid_arg "Convolution.execute: signal longer than plan";
  if not plan.linear then
    invalid_arg "Convolution.execute: circular plan cannot produce linear output";
  let out_len = na + plan.kernel_len - 1 in
  if Array.length dst < out_len then
    invalid_arg "Convolution.execute: dst too short";
  Fft.Real.forward_ip plan.rfft ~signal:a ~len:na ~spec_re:plan.sre
    ~spec_im:plan.sim;
  multiply_spectra plan;
  Fft.Real.inverse_ip plan.rfft ~spec_re:plan.sre ~spec_im:plan.sim ~signal:dst
    ~len:out_len

let execute_real = execute

let execute_real_circular plan ~signal ~len ~dst =
  if len < 1 || len > plan.max_signal || len > plan.n then
    invalid_arg "Convolution.execute_real_circular: bad signal length";
  if Bigarray.Array1.dim dst < plan.n then
    invalid_arg "Convolution.execute_real_circular: dst shorter than size";
  Fft.Real.forward_big plan.rfft ~signal ~len ~spec_re:plan.sre
    ~spec_im:plan.sim;
  multiply_spectra plan;
  Fft.Real.inverse_big plan.rfft ~spec_re:plan.sre ~spec_im:plan.sim
    ~signal:dst ~len:plan.n

let convolve_plan plan a =
  let na = Array.length a in
  if na > plan.max_signal then
    invalid_arg "Convolution.convolve_plan: signal longer than plan";
  if na = 0 then [||]
  else begin
    let dst = Array.make (na + plan.kernel_len - 1) 0.0 in
    execute plan a ~dst;
    dst
  end

let convolve_real = convolve_plan

(* Schoolbook convolution reading the signal from / writing into
   Bigarray vectors — the solver's direct path over its unboxed state.
   Allocation-free. *)
let direct_into_big (signal : Fft.vec) ~len ~kernel ~(dst : Fft.vec) =
  let nb = Array.length kernel in
  if len = 0 || nb = 0 then invalid_arg "Convolution.direct_into_big: empty input";
  let out_len = len + nb - 1 in
  if Bigarray.Array1.dim dst < out_len then
    invalid_arg "Convolution.direct_into_big: dst too short";
  for i = 0 to out_len - 1 do
    Bigarray.Array1.unsafe_set dst i 0.0
  done;
  for i = 0 to len - 1 do
    let ai = Bigarray.Array1.unsafe_get signal i in
    if ai <> 0.0 then
      for j = 0 to nb - 1 do
        let k = i + j in
        Bigarray.Array1.unsafe_set dst k
          (Bigarray.Array1.unsafe_get dst k +. (ai *. Array.unsafe_get kernel j))
      done
  done

(* ------------------------------------------------------------------ *)
(* Dual-channel convolution.

   Two real signals [a] and [b] are packed as [z = a + i b] and sent
   through ONE forward transform.  Because [a] and [b] are real, their
   spectra are recovered from [Z] by Hermitian symmetry:

     A_k = (Z_k + conj Z_{n-k}) / 2,   B_k = -i (Z_k - conj Z_{n-k}) / 2.

   Each spectrum is multiplied by its own kernel spectrum, the products
   are re-packed as [W_k = (A K_a)_k + i (B K_b)_k], and ONE inverse
   transform returns both convolutions: [Re w = a * k_a], [Im w = b * k_b].
   A Lindley step that previously cost four transforms (forward+inverse
   per chain) now costs two. *)

type dual_plan = {
  d_ka_len : int;
  d_kb_len : int;
  d_max_signal : int;
  d_n : int;
  d_fft_plan : Fft.plan;
  kare : float array;  (* spectrum of kernel_a *)
  kaim : float array;
  kbre : float array;  (* spectrum of kernel_b *)
  kbim : float array;
  zre : float array;  (* packed signal scratch, length n *)
  zim : float array;
}

let make_dual_plan ~kernel_a ~kernel_b ~max_signal =
  let nka = Array.length kernel_a and nkb = Array.length kernel_b in
  if nka = 0 || nkb = 0 then
    invalid_arg "Convolution.make_dual_plan: empty kernel";
  if max_signal < 1 then
    invalid_arg "Convolution.make_dual_plan: max_signal < 1";
  let n = Fft.next_power_of_two (max nka nkb + max_signal - 1) in
  let fft_plan = Fft.make_plan n in
  let spectrum kernel nk =
    let re = Array.make n 0.0 and im = Array.make n 0.0 in
    Array.blit kernel 0 re 0 nk;
    Fft.forward_ip fft_plan ~re ~im;
    (re, im)
  in
  let kare, kaim = spectrum kernel_a nka in
  let kbre, kbim = spectrum kernel_b nkb in
  {
    d_ka_len = nka;
    d_kb_len = nkb;
    d_max_signal = max_signal;
    d_n = n;
    d_fft_plan = fft_plan;
    kare;
    kaim;
    kbre;
    kbim;
    zre = Array.make n 0.0;
    zim = Array.make n 0.0;
  }

let execute_dual plan ~a ~b ~dst_a ~dst_b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Convolution.execute_dual: empty signal";
  if na > plan.d_max_signal || nb > plan.d_max_signal then
    invalid_arg "Convolution.execute_dual: signal longer than plan";
  let out_a = na + plan.d_ka_len - 1 and out_b = nb + plan.d_kb_len - 1 in
  if Array.length dst_a < out_a || Array.length dst_b < out_b then
    invalid_arg "Convolution.execute_dual: dst too short";
  let n = plan.d_n in
  let zre = plan.zre and zim = plan.zim in
  (* Pack z = a + i b. *)
  Array.blit a 0 zre 0 na;
  Array.fill zre na (n - na) 0.0;
  Array.blit b 0 zim 0 nb;
  Array.fill zim nb (n - nb) 0.0;
  Fft.forward_ip plan.d_fft_plan ~re:zre ~im:zim;
  let kare = plan.kare and kaim = plan.kaim in
  let kbre = plan.kbre and kbim = plan.kbim in
  (* Unpack by Hermitian symmetry, multiply, re-pack — self-conjugate
     bins first, then the (k, n-k) pairs in one sweep. *)
  let a0 = zre.(0) and b0 = zim.(0) in
  zre.(0) <- (a0 *. kare.(0)) -. (b0 *. kbim.(0));
  zim.(0) <- (a0 *. kaim.(0)) +. (b0 *. kbre.(0));
  if n > 1 then begin
    let h = n / 2 in
    let ah = zre.(h) and bh = zim.(h) in
    zre.(h) <- (ah *. kare.(h)) -. (bh *. kbim.(h));
    zim.(h) <- (ah *. kaim.(h)) +. (bh *. kbre.(h));
    for k = 1 to h - 1 do
      let j = n - k in
      let zrk = Array.unsafe_get zre k and zik = Array.unsafe_get zim k in
      let zrj = Array.unsafe_get zre j and zij = Array.unsafe_get zim j in
      (* A_k and B_k from the packed spectrum. *)
      let ar = 0.5 *. (zrk +. zrj) and ai = 0.5 *. (zik -. zij) in
      let br = 0.5 *. (zik +. zij) and bi = 0.5 *. (zrj -. zrk) in
      (* P = A_k Ka_k,  Q = B_k Kb_k. *)
      let kar = Array.unsafe_get kare k and kai = Array.unsafe_get kaim k in
      let kbr = Array.unsafe_get kbre k and kbi = Array.unsafe_get kbim k in
      let pr = (ar *. kar) -. (ai *. kai) and pi = (ar *. kai) +. (ai *. kar) in
      let qr = (br *. kbr) -. (bi *. kbi) and qi = (br *. kbi) +. (bi *. kbr) in
      (* W_k = P + i Q;  W_{n-k} = conj P + i conj Q. *)
      Array.unsafe_set zre k (pr -. qi);
      Array.unsafe_set zim k (pi +. qr);
      Array.unsafe_set zre j (pr +. qi);
      Array.unsafe_set zim j (qr -. pi)
    done
  end;
  Fft.inverse_ip plan.d_fft_plan ~re:zre ~im:zim;
  Array.blit zre 0 dst_a 0 out_a;
  Array.blit zim 0 dst_b 0 out_b
