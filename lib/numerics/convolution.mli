(** Linear convolution of real-valued sequences.

    The linear convolution of [a] (length [na]) and [b] (length [nb]) is
    the sequence of length [na + nb - 1] with
    [c.(k) = sum_j a.(j) * b.(k - j)].  This is the kernel of the paper's
    queue-occupancy recursion (eq. 19): each solver iteration convolves the
    occupancy vector with the discretized increment distribution.

    The planned APIs ({!execute}, {!execute_dual}) write into
    caller-owned buffers and reuse plan-owned scratch, so the steady
    state of an iterated solve performs zero heap allocation. *)

val direct : float array -> float array -> float array
(** O(na * nb) schoolbook convolution.  Exact up to rounding; used as the
    oracle for {!fft} and preferred for very short inputs. *)

val direct_into : float array -> float array -> dst:float array -> unit
(** [direct_into a b ~dst] writes the [na + nb - 1] convolution values
    into the prefix of [dst] without allocating.
    @raise Invalid_argument if an input is empty or [dst] is too short. *)

val fft : float array -> float array -> float array
(** O(n log n) convolution via the real-input transform engine (as
    suggested in the paper, Section II, citing Oppenheim & Schafer):
    both inputs are real, so each costs one half-size complex
    transform, on a {!Fft.good_size} grid rather than a power of two. *)

val real_transform_size_for : int -> int
(** The transform size {!fft} and default plans use for a linear output
    of the given length: the smallest even fast size whose half is also
    fast ([2 * Fft.good_size ((want + 1) / 2)]). *)

val prefer_fft : na:int -> nb:int -> bool
(** The single measured FFT/direct crossover used by {!auto} and by the
    solver's grid-level construction: true when the length product
    [na * nb] is large enough for the FFT to win. *)

val prefer_fft_fixed : transform_size:int -> direct_ops:int -> bool
(** Crossover for computations whose FFT cost is fixed by
    [transform_size] (a forward/inverse pair at that power-of-two size)
    while the direct path costs [direct_ops] multiply-adds — e.g. the
    autocovariance estimator, whose transform size [next_pow2 (2 n)]
    does not shrink with [max_lag].  Derived from the same centralized
    {!fft_product_threshold} calibration as {!prefer_fft}; any positive
    transform size is accepted (fast sizes cost their ceil-log2).
    @raise Invalid_argument unless [transform_size] is positive. *)

val auto : float array -> float array -> float array
(** Picks {!direct} or {!fft} using {!prefer_fft}. *)

type real_plan
(** A reusable real-transform plan for repeated convolutions against a
    fixed kernel, as in the solver where the increment distribution [w]
    is fixed across iterations while the occupancy vector changes.  The
    kernel's half-spectrum is precomputed; each execution is one real
    forward transform, one fused pass over the [n/2 + 1] independent
    bins, and one real inverse.  The plan owns its scratch buffers; a
    single plan must not be used concurrently. *)

type plan = real_plan
(** Historical alias: the complex planned path was replaced by the
    real-input engine ({!make_dual_plan} keeps a complex reference). *)

val make_real_plan :
  ?size:int -> kernel:float array -> max_signal:int -> unit -> real_plan
(** [make_real_plan ~kernel ~max_signal ()] precomputes the kernel
    half-spectrum on the default {!real_transform_size_for} grid, large
    enough for linear convolution with signals of length
    [<= max_signal].  An explicit [size] (an even fast size, at least
    [max_signal]) overrides the grid; when it is smaller than the full
    linear length the plan computes CIRCULAR convolutions mod [size]
    with the kernel wrapped at build time — the solver's aliased
    Lindley step.  @raise Invalid_argument on an empty kernel, a
    nonpositive [max_signal], or an unsupported/too-small [size]. *)

val make_plan : kernel:float array -> max_signal:int -> plan
(** [make_real_plan] with the default (linear) transform size. *)

val real_transform_size : real_plan -> int
(** The transform grid the plan runs on. *)

val execute : plan -> float array -> dst:float array -> unit
(** [execute plan a ~dst] writes [a * kernel] (length
    [na + kernel_len - 1]) into the prefix of [dst].  Performs zero heap
    allocation.  @raise Invalid_argument if [a] is empty or longer than
    the plan's [max_signal], [dst] is too short, or the plan is
    circular. *)

val execute_real : real_plan -> float array -> dst:float array -> unit
(** Alias of {!execute}, named for the engine it runs on. *)

val execute_real_circular :
  real_plan -> signal:Fft.vec -> len:int -> dst:Fft.vec -> unit
(** [execute_real_circular plan ~signal ~len ~dst] convolves
    [signal.(0 .. len - 1)] (zero-extended) with the kernel CIRCULARLY
    mod the plan size, writing all [size] wrapped values into [dst].
    Reads and writes Bigarray vectors — the solver's unboxed state —
    and performs zero heap allocation.  For a plan whose size covers
    the full linear length this is the linear convolution followed by
    the (numerically zero) padding tail. *)

val convolve_plan : plan -> float array -> float array
(** [convolve_plan plan a] is {!execute} into a fresh result array. *)

val convolve_real : real_plan -> float array -> float array
(** Alias of {!convolve_plan}. *)

val direct_into_big :
  Fft.vec -> len:int -> kernel:float array -> dst:Fft.vec -> unit
(** {!direct_into} over Bigarray vectors: schoolbook-convolves the
    first [len] entries of the signal with [kernel] into the prefix of
    [dst], allocation-free.  @raise Invalid_argument on empty inputs or
    a too-short [dst]. *)

type dual_plan
(** Plans TWO fixed kernels sharing one transform: the first signal is
    packed into the real part and the second into the imaginary part of
    a single complex FFT, the two spectra are separated by Hermitian
    symmetry, multiplied by their respective kernel spectra, and both
    products recovered from one inverse transform — two transforms per
    call where independent plans would spend four.  This is the engine
    under the solver's floor/ceiling Lindley step. *)

val make_dual_plan :
  kernel_a:float array ->
  kernel_b:float array ->
  max_signal:int ->
  dual_plan
(** Precomputes both kernel spectra on a shared grid sized for signals
    of length [<= max_signal].
    @raise Invalid_argument on an empty kernel or nonpositive size. *)

val execute_dual :
  dual_plan ->
  a:float array ->
  b:float array ->
  dst_a:float array ->
  dst_b:float array ->
  unit
(** [execute_dual plan ~a ~b ~dst_a ~dst_b] writes [a * kernel_a] into
    [dst_a] and [b * kernel_b] into [dst_b] using two transforms total
    and zero heap allocation.  @raise Invalid_argument on empty or
    over-long signals or too-short destinations. *)
