(** Linear convolution of real-valued sequences.

    The linear convolution of [a] (length [na]) and [b] (length [nb]) is
    the sequence of length [na + nb - 1] with
    [c.(k) = sum_j a.(j) * b.(k - j)].  This is the kernel of the paper's
    queue-occupancy recursion (eq. 19): each solver iteration convolves the
    occupancy vector with the discretized increment distribution.

    The planned APIs ({!execute}, {!execute_dual}) write into
    caller-owned buffers and reuse plan-owned scratch, so the steady
    state of an iterated solve performs zero heap allocation. *)

val direct : float array -> float array -> float array
(** O(na * nb) schoolbook convolution.  Exact up to rounding; used as the
    oracle for {!fft} and preferred for very short inputs. *)

val direct_into : float array -> float array -> dst:float array -> unit
(** [direct_into a b ~dst] writes the [na + nb - 1] convolution values
    into the prefix of [dst] without allocating.
    @raise Invalid_argument if an input is empty or [dst] is too short. *)

val fft : float array -> float array -> float array
(** O(n log n) convolution via zero-padded FFT (as suggested in the paper,
    Section II, citing Oppenheim & Schafer). *)

val prefer_fft : na:int -> nb:int -> bool
(** The single measured FFT/direct crossover used by {!auto} and by the
    solver's grid-level construction: true when the length product
    [na * nb] is large enough for the FFT to win. *)

val prefer_fft_fixed : transform_size:int -> direct_ops:int -> bool
(** Crossover for computations whose FFT cost is fixed by
    [transform_size] (a forward/inverse pair at that power-of-two size)
    while the direct path costs [direct_ops] multiply-adds — e.g. the
    autocovariance estimator, whose transform size [next_pow2 (2 n)]
    does not shrink with [max_lag].  Derived from the same centralized
    {!fft_product_threshold} calibration as {!prefer_fft}.
    @raise Invalid_argument unless [transform_size] is a power of two. *)

val auto : float array -> float array -> float array
(** Picks {!direct} or {!fft} using {!prefer_fft}. *)

type plan
(** A reusable FFT plan for repeated convolutions against a fixed kernel,
    as in the solver where the increment distribution [w] is fixed across
    iterations while the occupancy vector changes.  The plan owns its
    scratch buffers; a single plan must not be used concurrently. *)

val make_plan : kernel:float array -> max_signal:int -> plan
(** [make_plan ~kernel ~max_signal] precomputes the padded transform of
    [kernel] for convolving with signals of length [<= max_signal]. *)

val execute : plan -> float array -> dst:float array -> unit
(** [execute plan a ~dst] writes [a * kernel] (length
    [na + kernel_len - 1]) into the prefix of [dst].  Performs zero heap
    allocation.  @raise Invalid_argument if [a] is empty or longer than
    the plan's [max_signal], or [dst] is too short. *)

val convolve_plan : plan -> float array -> float array
(** [convolve_plan plan a] is {!execute} into a fresh result array. *)

type dual_plan
(** Plans TWO fixed kernels sharing one transform: the first signal is
    packed into the real part and the second into the imaginary part of
    a single complex FFT, the two spectra are separated by Hermitian
    symmetry, multiplied by their respective kernel spectra, and both
    products recovered from one inverse transform — two transforms per
    call where independent plans would spend four.  This is the engine
    under the solver's floor/ceiling Lindley step. *)

val make_dual_plan :
  kernel_a:float array ->
  kernel_b:float array ->
  max_signal:int ->
  dual_plan
(** Precomputes both kernel spectra on a shared grid sized for signals
    of length [<= max_signal].
    @raise Invalid_argument on an empty kernel or nonpositive size. *)

val execute_dual :
  dual_plan ->
  a:float array ->
  b:float array ->
  dst_a:float array ->
  dst_b:float array ->
  unit
(** [execute_dual plan ~a ~b ~dst_a ~dst_b] writes [a * kernel_a] into
    [dst_a] and [b * kernel_b] into [dst_b] using two transforms total
    and zero heap allocation.  @raise Invalid_argument on empty or
    over-long signals or too-short destinations. *)
