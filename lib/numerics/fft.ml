let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

type vec =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* ------------------------------------------------------------------ *)
(* Planned power-of-two transforms.

   A plan for size [n] precomputes the bit-reversal permutation and one
   flat twiddle-factor table shared by every butterfly stage: stage
   [len = 2^s] reads its [half = len/2] factors at offset [half - 1]
   (the halves of the earlier stages sum to exactly that), so the table
   holds [n - 1] factors total.  Each factor is computed by a direct
   cos/sin call rather than the repeated-multiplication recurrence of
   the unplanned code path, which both removes the O(len) error
   accumulation within a stage and moves all trigonometry out of the
   transform itself. *)

type pow2_plan = {
  p2_size : int;
  bitrev : int array;  (* bitrev.(i) is i with log2 n bits reversed. *)
  wre : float array;  (* cos of the forward angle -2 pi k / len. *)
  wim : float array;  (* sin of the forward angle (<= 0 half-plane). *)
}

(* Sizes beyond powers of two.  [Split] peels one odd radix r in {3, 5}
   off the top with a decimation-in-time step over r interleaved
   sub-transforms; nesting two Splits reaches 15 * 2^k.  [Bluestein]
   re-expresses an arbitrary-size DFT as a chirp-modulated circular
   convolution at a power-of-two size >= 2n - 1 — never faster than
   padding, but exact for any length, so it completes the API.  Both
   own scratch, so unlike the power-of-two plans they must not be used
   concurrently. *)
type plan =
  | Pow2 of pow2_plan
  | Split of {
      s_size : int;
      radix : int;
      sub : plan;  (* size s_size / radix *)
      twre : float array;  (* cos (-2 pi j / n), j = 0 .. n - 1 *)
      twim : float array;
      sre : float array array;  (* radix scratch rows of length n/radix *)
      sim : float array array;
    }
  | Bluestein of {
      b_size : int;
      np : pow2_plan;  (* power-of-two plan at np_size >= 2 n - 1 *)
      cre : float array;  (* chirp c_j = exp (-i pi j^2 / n), j < n *)
      cim : float array;
      bre : float array;  (* spectrum of the wrapped conjugate chirp *)
      bim : float array;
      sre : float array;  (* scratch, length np size *)
      sim : float array;
    }

let m_plans_built = Lrd_obs.Obs.Counter.make "fft/plans_built"

let make_pow2_plan n =
  if not (is_power_of_two n) then
    invalid_arg "Fft.make_plan: size must be a power of two";
  Lrd_obs.Obs.Counter.incr m_plans_built;
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.instant ~arg:n "fft/plan_build";
  let bitrev = Array.make n 0 in
  for i = 1 to n - 1 do
    (* Shift the previous reversal right and bring in the new low bit. *)
    bitrev.(i) <- (bitrev.(i lsr 1) lsr 1) lor (if i land 1 = 0 then 0 else n lsr 1)
  done;
  let wre = Array.make (max 1 (n - 1)) 1.0 in
  let wim = Array.make (max 1 (n - 1)) 0.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let offset = half - 1 in
    for k = 0 to half - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int k /. float_of_int !len in
      wre.(offset + k) <- cos ang;
      wim.(offset + k) <- sin ang
    done;
    len := !len * 2
  done;
  { p2_size = n; bitrev; wre; wim }

let make_plan n = Pow2 (make_pow2_plan n)

(* Supported fast sizes are 2^a * f with f in {1, 3, 5, 15}: one Split
   per odd radix on top of a power-of-two core. *)
let odd_part n =
  let rec go m = if m land 1 = 0 then go (m lsr 1) else m in
  go n

let is_fast_size n =
  n > 0 && (match odd_part n with 1 | 3 | 5 | 15 -> true | _ -> false)

(* Cost-aware: the smallest candidate per odd factor, then the cheapest
   by measured per-point weight (the split stages of the odd radices add
   ~6-12% per layer over the power-of-two butterflies, so e.g. 1920 is a
   smaller grid than 2048 but a slower transform).  Ties break toward
   the smaller size. *)
let good_size n =
  let n = max 1 n in
  let best = ref 0 and best_cost = ref infinity in
  List.iter
    (fun (f, weight) ->
      let s = ref f in
      while !s < n do s := !s * 2 done;
      let cost = float_of_int !s *. weight in
      if
        cost < !best_cost
        || (cost = !best_cost && (!best = 0 || !s < !best))
      then begin
        best := !s;
        best_cost := cost
      end)
    [ (1, 1.0); (3, 1.06); (5, 1.12); (15, 1.19) ];
  !best

let forward_twiddles n =
  let twre = Array.make n 1.0 and twim = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let ang = -2.0 *. Float.pi *. float_of_int j /. float_of_int n in
    twre.(j) <- cos ang;
    twim.(j) <- sin ang
  done;
  (twre, twim)

(* The in-place power-of-two butterflies.  [conjugate = false] is the
   forward transform; [true] runs the inverse (without the 1/n scaling)
   by negating the table's sine.  Performs no heap allocation. *)
let transform_pow2 plan ~conjugate re im =
  let n = plan.p2_size in
  let bitrev = plan.bitrev in
  for i = 0 to n - 1 do
    let j = Array.unsafe_get bitrev i in
    if i < j then begin
      let tr = Array.unsafe_get re i and ti = Array.unsafe_get im i in
      Array.unsafe_set re i (Array.unsafe_get re j);
      Array.unsafe_set im i (Array.unsafe_get im j);
      Array.unsafe_set re j tr;
      Array.unsafe_set im j ti
    end
  done;
  let wre = plan.wre and wim = plan.wim in
  let sign = if conjugate then -1.0 else 1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let offset = half - 1 in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        let cr = Array.unsafe_get wre (offset + k)
        and ci = sign *. Array.unsafe_get wim (offset + k) in
        let a = !i + k in
        let b = a + half in
        let rb = Array.unsafe_get re b and ib = Array.unsafe_get im b in
        let tr = (rb *. cr) -. (ib *. ci) and ti = (rb *. ci) +. (ib *. cr) in
        let ra = Array.unsafe_get re a and ia = Array.unsafe_get im a in
        Array.unsafe_set re b (ra -. tr);
        Array.unsafe_set im b (ia -. ti);
        Array.unsafe_set re a (ra +. tr);
        Array.unsafe_set im a (ia +. ti)
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(* Bluestein's identity: jk = (j^2 + k^2 - (k - j)^2) / 2, so
   X_k = c_k * sum_j (x_j c_j) conj c_{k-j} with c_j = exp(-i pi j^2/n)
   — a circular convolution of the chirped signal against the conjugate
   chirp, evaluated at any power-of-two size >= 2n - 1. *)
let bluestein_forward ~n ~np ~cre ~cim ~bre ~bim ~sre ~sim re im =
  let ns = np.p2_size in
  Array.fill sre 0 ns 0.0;
  Array.fill sim 0 ns 0.0;
  for j = 0 to n - 1 do
    let xr = Array.unsafe_get re j and xi = Array.unsafe_get im j in
    let cr = Array.unsafe_get cre j and ci = Array.unsafe_get cim j in
    Array.unsafe_set sre j ((xr *. cr) -. (xi *. ci));
    Array.unsafe_set sim j ((xr *. ci) +. (xi *. cr))
  done;
  transform_pow2 np ~conjugate:false sre sim;
  for k = 0 to ns - 1 do
    let ar = Array.unsafe_get sre k and ai = Array.unsafe_get sim k in
    let br = Array.unsafe_get bre k and bi = Array.unsafe_get bim k in
    Array.unsafe_set sre k ((ar *. br) -. (ai *. bi));
    Array.unsafe_set sim k ((ar *. bi) +. (ai *. br))
  done;
  transform_pow2 np ~conjugate:true sre sim;
  let inv = 1.0 /. float_of_int ns in
  for k = 0 to n - 1 do
    let ar = inv *. Array.unsafe_get sre k
    and ai = inv *. Array.unsafe_get sim k in
    let cr = Array.unsafe_get cre k and ci = Array.unsafe_get cim k in
    Array.unsafe_set re k ((ar *. cr) -. (ai *. ci));
    Array.unsafe_set im k ((ar *. ci) +. (ai *. cr))
  done

let rec transform_any plan ~conjugate re im =
  match plan with
  | Pow2 p -> transform_pow2 p ~conjugate re im
  | Split { s_size = n; radix = r; sub; twre; twim; sre; sim } ->
      let m = n / r in
      (* Decimate: row s holds x_{r l + s}. *)
      for s = 0 to r - 1 do
        let rs = Array.unsafe_get sre s and is_ = Array.unsafe_get sim s in
        for l = 0 to m - 1 do
          let src = (r * l) + s in
          Array.unsafe_set rs l (Array.unsafe_get re src);
          Array.unsafe_set is_ l (Array.unsafe_get im src)
        done;
        transform_any sub ~conjugate rs is_
      done;
      (* Recombine X_{k + s' m} = sum_s w_n^{(k + s' m) s} Z_s[k] with a
         dedicated radix butterfly: the twiddles t_s = Z_s[k] w_n^{s k}
         cost (r - 1) complex multiplies per k, and the cross-output
         combination uses the real constants of the r-point DFT instead
         of r more table multiplies per output — this is what makes the
         mixed-radix grids competitive with power-of-two padding. *)
      let sign = if conjugate then -1.0 else 1.0 in
      (match r with
      | 3 ->
          let z0r = Array.unsafe_get sre 0 and z0i = Array.unsafe_get sim 0 in
          let z1r = Array.unsafe_get sre 1 and z1i = Array.unsafe_get sim 1 in
          let z2r = Array.unsafe_get sre 2 and z2i = Array.unsafe_get sim 2 in
          (* omega_3 = -1/2 - i sign sqrt(3)/2. *)
          let s3 = sign *. 0.8660254037844386 in
          for k = 0 to m - 1 do
            let w1r = Array.unsafe_get twre k
            and w1i = sign *. Array.unsafe_get twim k in
            let w2r = Array.unsafe_get twre (2 * k)
            and w2i = sign *. Array.unsafe_get twim (2 * k) in
            let a1r = Array.unsafe_get z1r k
            and a1i = Array.unsafe_get z1i k in
            let a2r = Array.unsafe_get z2r k
            and a2i = Array.unsafe_get z2i k in
            let t1r = (a1r *. w1r) -. (a1i *. w1i)
            and t1i = (a1r *. w1i) +. (a1i *. w1r) in
            let t2r = (a2r *. w2r) -. (a2i *. w2i)
            and t2i = (a2r *. w2i) +. (a2i *. w2r) in
            let ur = t1r +. t2r and ui = t1i +. t2i in
            let vr = t1r -. t2r and vi = t1i -. t2i in
            let br = Array.unsafe_get z0r k and bi = Array.unsafe_get z0i k in
            Array.unsafe_set re k (br +. ur);
            Array.unsafe_set im k (bi +. ui);
            let wr = br -. (0.5 *. ur) and wi = bi -. (0.5 *. ui) in
            Array.unsafe_set re (k + m) (wr +. (s3 *. vi));
            Array.unsafe_set im (k + m) (wi -. (s3 *. vr));
            Array.unsafe_set re (k + (2 * m)) (wr -. (s3 *. vi));
            Array.unsafe_set im (k + (2 * m)) (wi +. (s3 *. vr))
          done
      | 5 ->
          let z0r = Array.unsafe_get sre 0 and z0i = Array.unsafe_get sim 0 in
          let z1r = Array.unsafe_get sre 1 and z1i = Array.unsafe_get sim 1 in
          let z2r = Array.unsafe_get sre 2 and z2i = Array.unsafe_get sim 2 in
          let z3r = Array.unsafe_get sre 3 and z3i = Array.unsafe_get sim 3 in
          let z4r = Array.unsafe_get sre 4 and z4i = Array.unsafe_get sim 4 in
          (* omega_5^b = cb - i sign sb. *)
          let c1 = 0.30901699437494745 and c2 = -0.8090169943749473 in
          let s1 = sign *. 0.9510565162951535
          and s2 = sign *. 0.5877852522924731 in
          for k = 0 to m - 1 do
            let w1r = Array.unsafe_get twre k
            and w1i = sign *. Array.unsafe_get twim k in
            let w2r = Array.unsafe_get twre (2 * k)
            and w2i = sign *. Array.unsafe_get twim (2 * k) in
            let w3r = Array.unsafe_get twre (3 * k)
            and w3i = sign *. Array.unsafe_get twim (3 * k) in
            let w4r = Array.unsafe_get twre (4 * k)
            and w4i = sign *. Array.unsafe_get twim (4 * k) in
            let a1r = Array.unsafe_get z1r k
            and a1i = Array.unsafe_get z1i k in
            let a2r = Array.unsafe_get z2r k
            and a2i = Array.unsafe_get z2i k in
            let a3r = Array.unsafe_get z3r k
            and a3i = Array.unsafe_get z3i k in
            let a4r = Array.unsafe_get z4r k
            and a4i = Array.unsafe_get z4i k in
            let t1r = (a1r *. w1r) -. (a1i *. w1i)
            and t1i = (a1r *. w1i) +. (a1i *. w1r) in
            let t2r = (a2r *. w2r) -. (a2i *. w2i)
            and t2i = (a2r *. w2i) +. (a2i *. w2r) in
            let t3r = (a3r *. w3r) -. (a3i *. w3i)
            and t3i = (a3r *. w3i) +. (a3i *. w3r) in
            let t4r = (a4r *. w4r) -. (a4i *. w4i)
            and t4i = (a4r *. w4i) +. (a4i *. w4r) in
            let u1r = t1r +. t4r and u1i = t1i +. t4i in
            let v1r = t1r -. t4r and v1i = t1i -. t4i in
            let u2r = t2r +. t3r and u2i = t2i +. t3i in
            let v2r = t2r -. t3r and v2i = t2i -. t3i in
            let br = Array.unsafe_get z0r k and bi = Array.unsafe_get z0i k in
            Array.unsafe_set re k (br +. u1r +. u2r);
            Array.unsafe_set im k (bi +. u1i +. u2i);
            let p1r = br +. (c1 *. u1r) +. (c2 *. u2r)
            and p1i = bi +. (c1 *. u1i) +. (c2 *. u2i) in
            let q1r = (s1 *. v1r) +. (s2 *. v2r)
            and q1i = (s1 *. v1i) +. (s2 *. v2i) in
            Array.unsafe_set re (k + m) (p1r +. q1i);
            Array.unsafe_set im (k + m) (p1i -. q1r);
            Array.unsafe_set re (k + (4 * m)) (p1r -. q1i);
            Array.unsafe_set im (k + (4 * m)) (p1i +. q1r);
            let p2r = br +. (c2 *. u1r) +. (c1 *. u2r)
            and p2i = bi +. (c2 *. u1i) +. (c1 *. u2i) in
            let q2r = (s2 *. v1r) -. (s1 *. v2r)
            and q2i = (s2 *. v1i) -. (s1 *. v2i) in
            Array.unsafe_set re (k + (2 * m)) (p2r +. q2i);
            Array.unsafe_set im (k + (2 * m)) (p2i -. q2r);
            Array.unsafe_set re (k + (3 * m)) (p2r -. q2i);
            Array.unsafe_set im (k + (3 * m)) (p2i +. q2r)
          done
      | _ ->
          (* Unreached by [make_any_plan] (radices are 3 and 5); kept as
             the reference recombination for any future radix. *)
          for k = 0 to m - 1 do
            for block = 0 to r - 1 do
              let t = k + (block * m) in
              let accr = ref 0.0 and acci = ref 0.0 in
              for s = 0 to r - 1 do
                let idx = t * s mod n in
                let cr = Array.unsafe_get twre idx
                and ci = sign *. Array.unsafe_get twim idx in
                let zr = Array.unsafe_get (Array.unsafe_get sre s) k
                and zi = Array.unsafe_get (Array.unsafe_get sim s) k in
                accr := !accr +. ((zr *. cr) -. (zi *. ci));
                acci := !acci +. ((zr *. ci) +. (zi *. cr))
              done;
              Array.unsafe_set re t !accr;
              Array.unsafe_set im t !acci
            done
          done)
  | Bluestein { b_size = n; np; cre; cim; bre; bim; sre; sim } ->
      (* The inverse direction is conj . forward . conj (no scaling). *)
      if conjugate then
        for j = 0 to n - 1 do
          Array.unsafe_set im j (-.Array.unsafe_get im j)
        done;
      bluestein_forward ~n ~np ~cre ~cim ~bre ~bim ~sre ~sim re im;
      if conjugate then
        for j = 0 to n - 1 do
          Array.unsafe_set im j (-.Array.unsafe_get im j)
        done

let rec make_any_plan n =
  if n <= 0 then invalid_arg "Fft.make_any_plan: size must be positive";
  if is_power_of_two n then make_plan n
  else if n mod 3 = 0 && is_fast_size n then
    split_plan ~radix:3 n
  else if n mod 5 = 0 && is_fast_size n then
    split_plan ~radix:5 n
  else begin
    let ns = next_power_of_two ((2 * n) - 1) in
    let np = make_pow2_plan ns in
    let cre = Array.make n 1.0 and cim = Array.make n 0.0 in
    let two_n = 2 * n in
    for j = 0 to n - 1 do
      (* j^2 mod 2n keeps the angle small without changing the chirp. *)
      let q = j * j mod two_n in
      let ang = -.Float.pi *. float_of_int q /. float_of_int n in
      cre.(j) <- cos ang;
      cim.(j) <- sin ang
    done;
    let bre = Array.make ns 0.0 and bim = Array.make ns 0.0 in
    bre.(0) <- 1.0;
    for j = 1 to n - 1 do
      bre.(j) <- cre.(j);
      bim.(j) <- -.cim.(j);
      bre.(ns - j) <- cre.(j);
      bim.(ns - j) <- -.cim.(j)
    done;
    transform_pow2 np ~conjugate:false bre bim;
    Bluestein
      {
        b_size = n;
        np;
        cre;
        cim;
        bre;
        bim;
        sre = Array.make ns 0.0;
        sim = Array.make ns 0.0;
      }
  end

and split_plan ~radix n =
  let m = n / radix in
  let twre, twim = forward_twiddles n in
  Split
    {
      s_size = n;
      radix;
      sub = make_any_plan m;
      twre;
      twim;
      sre = Array.init radix (fun _ -> Array.make m 0.0);
      sim = Array.init radix (fun _ -> Array.make m 0.0);
    }

let size = function
  | Pow2 p -> p.p2_size
  | Split s -> s.s_size
  | Bluestein b -> b.b_size

let check_plan plan re im =
  let n = size plan in
  if Array.length re <> n || Array.length im <> n then
    invalid_arg "Fft: array length does not match the plan size"

let forward_ip plan ~re ~im =
  check_plan plan re im;
  transform_any plan ~conjugate:false re im

let inverse_ip plan ~re ~im =
  check_plan plan re im;
  transform_any plan ~conjugate:true re im;
  let n = size plan in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    Array.unsafe_set re i (Array.unsafe_get re i *. inv);
    Array.unsafe_set im i (Array.unsafe_get im i *. inv)
  done

(* ------------------------------------------------------------------ *)
(* Unplanned API.

   Sizes are powers of two, so at most ~60 distinct plans can ever
   exist; memoizing them makes the plain [forward]/[inverse] calls all
   over the statistics and trace generators reuse the tables too. *)

let plan_cache : (int, plan) Hashtbl.t = Hashtbl.create 16

(* Cache traffic is worth watching: a workload that misses here on a
   hot path is rebuilding twiddle tables instead of transforming. *)
let m_plan_hits = Lrd_obs.Obs.Counter.make "fft/plan_cache_hits"
let m_plan_misses = Lrd_obs.Obs.Counter.make "fft/plan_cache_misses"

let cached_plan n =
  match Hashtbl.find_opt plan_cache n with
  | Some p ->
      Lrd_obs.Obs.Counter.incr m_plan_hits;
      p
  | None ->
      Lrd_obs.Obs.Counter.incr m_plan_misses;
      let p = make_plan n in
      Hashtbl.add plan_cache n p;
      p

let check re im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft: re and im must have the same length";
  if not (is_power_of_two n) then
    invalid_arg "Fft: length must be a power of two"

let forward ~re ~im =
  check re im;
  transform_any (cached_plan (Array.length re)) ~conjugate:false re im

let inverse ~re ~im =
  check re im;
  inverse_ip (cached_plan (Array.length re)) ~re ~im

let dft_naive ~re ~im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft.dft_naive: re and im must have the same length";
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let ang =
        -2.0 *. Float.pi *. float_of_int k *. float_of_int j
        /. float_of_int n
      in
      let c = cos ang and s = sin ang in
      sr := !sr +. (re.(j) *. c) -. (im.(j) *. s);
      si := !si +. (re.(j) *. s) +. (im.(j) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)

(* ------------------------------------------------------------------ *)
(* Real-input transforms.

   A real signal of even length n is packed into a complex signal of
   length h = n/2 (z_l = x_{2l} + i x_{2l+1}); one half-size complex
   transform plus an O(n) split pass yields the half-spectrum
   X_0 .. X_h, which by conjugate symmetry is the whole transform.  The
   split reads the even/odd sub-spectra out of Z by Hermitian symmetry:

     E_k = (Z_k + conj Z_{h-k}) / 2,  O_k = -i (Z_k - conj Z_{h-k}) / 2,
     X_k = E_k + exp(-2 i pi k / n) O_k.

   The inverse runs the same algebra backwards — W_k built from the
   half-spectrum feeds one half-size FORWARD transform whose output
   interleaves back into the signal — so forward and inverse share the
   complex core and the twiddle table t_k = exp(-2 i pi k / n). *)

module Real = struct
  type t = {
    n : int;
    h : int;
    sub : plan;  (* complex plan of size h *)
    ifac : float;  (* 1 / (2 h), preboxed so inverse calls stay alloc-free *)
    tre : float array;  (* cos (-2 pi k / n), k = 0 .. h *)
    tim : float array;
    pre : float array;  (* packed half-size scratch, length h *)
    pim : float array;
  }

  let m_real_plans_built = Lrd_obs.Obs.Counter.make "fft/real_plans_built"

  let make_plan n =
    if n < 2 || n land 1 = 1 || not (is_fast_size (n / 2)) then
      invalid_arg
        "Fft.Real.make_plan: size must be even with n/2 of the form \
         2^a*{1,3,5,15}";
    Lrd_obs.Obs.Counter.incr m_real_plans_built;
    if Lrd_obs.Obs.Trace.enabled () then
      Lrd_obs.Obs.Trace.instant ~arg:n "fft/real_plan_build";
    let h = n / 2 in
    let tre = Array.make (h + 1) 1.0 and tim = Array.make (h + 1) 0.0 in
    for k = 0 to h do
      let ang = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
      tre.(k) <- cos ang;
      tim.(k) <- sin ang
    done;
    {
      n;
      h;
      sub = make_any_plan h;
      ifac = 0.5 /. float_of_int h;
      tre;
      tim;
      pre = Array.make h 0.0;
      pim = Array.make h 0.0;
    }

  let size t = t.n
  let spectrum_length t = t.h + 1

  (* Per-domain plan memo: real plans own scratch, so unlike the
     power-of-two complex plans they cannot be shared across domains;
     a DLS-keyed table gives each domain its own. *)
  let m_cache_hits = Lrd_obs.Obs.Counter.make "fft/real_plan_cache_hits"
  let m_cache_misses = Lrd_obs.Obs.Counter.make "fft/real_plan_cache_misses"

  let domain_plans : (int, t) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 8)

  let cached_plan n =
    let table = Domain.DLS.get domain_plans in
    match Hashtbl.find_opt table n with
    | Some p ->
        Lrd_obs.Obs.Counter.incr m_cache_hits;
        p
    | None ->
        Lrd_obs.Obs.Counter.incr m_cache_misses;
        let p = make_plan n in
        Hashtbl.add table n p;
        p

  let check_spec t ~spec_re ~spec_im =
    if Array.length spec_re < t.h + 1 || Array.length spec_im < t.h + 1 then
      invalid_arg "Fft.Real: spectrum buffers shorter than n/2 + 1"

  (* Pack signal.(0 .. len-1), zero-extended to n, into pre/pim. *)
  let pack_float t signal len =
    let pre = t.pre and pim = t.pim in
    let pairs = len / 2 in
    for l = 0 to pairs - 1 do
      Array.unsafe_set pre l (Array.unsafe_get signal (2 * l));
      Array.unsafe_set pim l (Array.unsafe_get signal ((2 * l) + 1))
    done;
    let next =
      if len land 1 = 1 then begin
        Array.unsafe_set pre pairs (Array.unsafe_get signal (len - 1));
        Array.unsafe_set pim pairs 0.0;
        pairs + 1
      end
      else pairs
    in
    Array.fill pre next (t.h - next) 0.0;
    Array.fill pim next (t.h - next) 0.0

  let pack_big t (signal : vec) len =
    let pre = t.pre and pim = t.pim in
    let pairs = len / 2 in
    for l = 0 to pairs - 1 do
      Array.unsafe_set pre l (Bigarray.Array1.unsafe_get signal (2 * l));
      Array.unsafe_set pim l (Bigarray.Array1.unsafe_get signal ((2 * l) + 1))
    done;
    let next =
      if len land 1 = 1 then begin
        Array.unsafe_set pre pairs (Bigarray.Array1.unsafe_get signal (len - 1));
        Array.unsafe_set pim pairs 0.0;
        pairs + 1
      end
      else pairs
    in
    Array.fill pre next (t.h - next) 0.0;
    Array.fill pim next (t.h - next) 0.0

  (* Split the packed spectrum Z into the real half-spectrum.  The
     (k, h-k) pair shares one twiddle read: with P = t_k O_k,
     X_{h-k} = conj (E_k - P). *)
  let split_forward t ~spec_re ~spec_im =
    let h = t.h in
    let pre = t.pre and pim = t.pim in
    let zr0 = Array.unsafe_get pre 0 and zi0 = Array.unsafe_get pim 0 in
    Array.unsafe_set spec_re 0 (zr0 +. zi0);
    Array.unsafe_set spec_im 0 0.0;
    Array.unsafe_set spec_re h (zr0 -. zi0);
    Array.unsafe_set spec_im h 0.0;
    let tre = t.tre and tim = t.tim in
    let k = ref 1 in
    while 2 * !k < h do
      let kk = !k in
      let j = h - kk in
      let zrk = Array.unsafe_get pre kk and zik = Array.unsafe_get pim kk in
      let zrj = Array.unsafe_get pre j and zij = Array.unsafe_get pim j in
      let er = 0.5 *. (zrk +. zrj) and ei = 0.5 *. (zik -. zij) in
      let our = 0.5 *. (zik +. zij) and oui = 0.5 *. (zrj -. zrk) in
      let tr = Array.unsafe_get tre kk and ti = Array.unsafe_get tim kk in
      let pr = (our *. tr) -. (oui *. ti) in
      let pi = (our *. ti) +. (oui *. tr) in
      Array.unsafe_set spec_re kk (er +. pr);
      Array.unsafe_set spec_im kk (ei +. pi);
      Array.unsafe_set spec_re j (er -. pr);
      Array.unsafe_set spec_im j (pi -. ei);
      incr k
    done;
    if h land 1 = 0 && h >= 2 then begin
      let mid = h / 2 in
      Array.unsafe_set spec_re mid (Array.unsafe_get pre mid);
      Array.unsafe_set spec_im mid (-.Array.unsafe_get pim mid)
    end

  let forward_ip t ~signal ~len ~spec_re ~spec_im =
    if len < 0 || len > t.n then invalid_arg "Fft.Real.forward_ip: bad len";
    if Array.length signal < len then
      invalid_arg "Fft.Real.forward_ip: signal shorter than len";
    check_spec t ~spec_re ~spec_im;
    pack_float t signal len;
    transform_any t.sub ~conjugate:false t.pre t.pim;
    split_forward t ~spec_re ~spec_im

  let forward_big t ~(signal : vec) ~len ~spec_re ~spec_im =
    if len < 0 || len > t.n then invalid_arg "Fft.Real.forward_big: bad len";
    if Bigarray.Array1.dim signal < len then
      invalid_arg "Fft.Real.forward_big: signal shorter than len";
    check_spec t ~spec_re ~spec_im;
    pack_big t signal len;
    transform_any t.sub ~conjugate:false t.pre t.pim;
    split_forward t ~spec_re ~spec_im

  (* Load W_k = fac * (E2_k + i (D2_k conj t_k)) into pre/pim, where
     E2_k = X_k + conj X_{h-k} and D2_k = X_k - conj X_{h-k} (so E2/2
     and D2 conj t / 2 are the even/odd sub-spectra).  With fac =
     1/(2h) the following half-size CONJUGATE transform interleaves the
     normalized inverse; [conj] negates the imaginary reads, which with
     fac = 1 turns the same pass into the unnormalized synthesis
     y_j = sum_k X_k exp(-2 i pi j k / n) of a Hermitian spectrum. *)
  let load_w t ~spec_re ~spec_im ~conj ~fac =
    let h = t.h in
    let pre = t.pre and pim = t.pim in
    let tre = t.tre and tim = t.tim in
    let sign = if conj then -1.0 else 1.0 in
    for k = 0 to h - 1 do
      let j = h - k in
      let xrk = Array.unsafe_get spec_re k
      and xik = sign *. Array.unsafe_get spec_im k in
      let xrj = Array.unsafe_get spec_re j
      and xij = sign *. Array.unsafe_get spec_im j in
      let er = xrk +. xrj and ei = xik -. xij in
      let dr = xrk -. xrj and di = xik +. xij in
      let tr = Array.unsafe_get tre k and ti = Array.unsafe_get tim k in
      let our = (dr *. tr) +. (di *. ti) in
      let oui = (di *. tr) -. (dr *. ti) in
      Array.unsafe_set pre k (fac *. (er -. oui));
      Array.unsafe_set pim k (fac *. (ei +. our))
    done

  let unpack_float t signal len =
    let pre = t.pre and pim = t.pim in
    let pairs = len / 2 in
    for l = 0 to pairs - 1 do
      Array.unsafe_set signal (2 * l) (Array.unsafe_get pre l);
      Array.unsafe_set signal ((2 * l) + 1) (Array.unsafe_get pim l)
    done;
    if len land 1 = 1 then
      Array.unsafe_set signal (len - 1) (Array.unsafe_get pre pairs)

  let unpack_big t (signal : vec) len =
    let pre = t.pre and pim = t.pim in
    let pairs = len / 2 in
    for l = 0 to pairs - 1 do
      Bigarray.Array1.unsafe_set signal (2 * l) (Array.unsafe_get pre l);
      Bigarray.Array1.unsafe_set signal ((2 * l) + 1) (Array.unsafe_get pim l)
    done;
    if len land 1 = 1 then
      Bigarray.Array1.unsafe_set signal (len - 1) (Array.unsafe_get pre pairs)

  let inverse_ip t ~spec_re ~spec_im ~signal ~len =
    if len < 0 || len > t.n then invalid_arg "Fft.Real.inverse_ip: bad len";
    if Array.length signal < len then
      invalid_arg "Fft.Real.inverse_ip: signal shorter than len";
    check_spec t ~spec_re ~spec_im;
    load_w t ~spec_re ~spec_im ~conj:false ~fac:t.ifac;
    transform_any t.sub ~conjugate:true t.pre t.pim;
    unpack_float t signal len

  let inverse_big t ~spec_re ~spec_im ~(signal : vec) ~len =
    if len < 0 || len > t.n then invalid_arg "Fft.Real.inverse_big: bad len";
    if Bigarray.Array1.dim signal < len then
      invalid_arg "Fft.Real.inverse_big: signal shorter than len";
    check_spec t ~spec_re ~spec_im;
    load_w t ~spec_re ~spec_im ~conj:false ~fac:t.ifac;
    transform_any t.sub ~conjugate:true t.pre t.pim;
    unpack_big t signal len

  let synthesize_ip t ~spec_re ~spec_im ~signal ~len =
    if len < 0 || len > t.n then invalid_arg "Fft.Real.synthesize_ip: bad len";
    if Array.length signal < len then
      invalid_arg "Fft.Real.synthesize_ip: signal shorter than len";
    check_spec t ~spec_re ~spec_im;
    load_w t ~spec_re ~spec_im ~conj:true ~fac:1.0;
    transform_any t.sub ~conjugate:true t.pre t.pim;
    unpack_float t signal len
end
