let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* ------------------------------------------------------------------ *)
(* Planned transforms.

   A plan for size [n] precomputes the bit-reversal permutation and one
   flat twiddle-factor table shared by every butterfly stage: stage
   [len = 2^s] reads its [half = len/2] factors at offset [half - 1]
   (the halves of the earlier stages sum to exactly that), so the table
   holds [n - 1] factors total.  Each factor is computed by a direct
   cos/sin call rather than the repeated-multiplication recurrence of
   the unplanned code path, which both removes the O(len) error
   accumulation within a stage and moves all trigonometry out of the
   transform itself. *)

type plan = {
  size : int;
  bitrev : int array;  (* bitrev.(i) is i with log2 n bits reversed. *)
  wre : float array;  (* cos of the forward angle -2 pi k / len. *)
  wim : float array;  (* sin of the forward angle (<= 0 half-plane). *)
}

let m_plans_built = Lrd_obs.Obs.Counter.make "fft/plans_built"

let make_plan n =
  if not (is_power_of_two n) then
    invalid_arg "Fft.make_plan: size must be a power of two";
  Lrd_obs.Obs.Counter.incr m_plans_built;
  if Lrd_obs.Obs.Trace.enabled () then
    Lrd_obs.Obs.Trace.instant ~arg:n "fft/plan_build";
  let bitrev = Array.make n 0 in
  for i = 1 to n - 1 do
    (* Shift the previous reversal right and bring in the new low bit. *)
    bitrev.(i) <- (bitrev.(i lsr 1) lsr 1) lor (if i land 1 = 0 then 0 else n lsr 1)
  done;
  let wre = Array.make (max 1 (n - 1)) 1.0 in
  let wim = Array.make (max 1 (n - 1)) 0.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let offset = half - 1 in
    for k = 0 to half - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int k /. float_of_int !len in
      wre.(offset + k) <- cos ang;
      wim.(offset + k) <- sin ang
    done;
    len := !len * 2
  done;
  { size = n; bitrev; wre; wim }

let size plan = plan.size

let check_plan plan re im =
  if Array.length re <> plan.size || Array.length im <> plan.size then
    invalid_arg "Fft: array length does not match the plan size"

(* The in-place butterflies.  [conjugate = false] is the forward
   transform; [true] runs the inverse (without the 1/n scaling) by
   negating the table's sine.  Performs no heap allocation. *)
let transform_ip plan ~conjugate re im =
  let n = plan.size in
  let bitrev = plan.bitrev in
  for i = 0 to n - 1 do
    let j = Array.unsafe_get bitrev i in
    if i < j then begin
      let tr = Array.unsafe_get re i and ti = Array.unsafe_get im i in
      Array.unsafe_set re i (Array.unsafe_get re j);
      Array.unsafe_set im i (Array.unsafe_get im j);
      Array.unsafe_set re j tr;
      Array.unsafe_set im j ti
    end
  done;
  let wre = plan.wre and wim = plan.wim in
  let sign = if conjugate then -1.0 else 1.0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let offset = half - 1 in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        let cr = Array.unsafe_get wre (offset + k)
        and ci = sign *. Array.unsafe_get wim (offset + k) in
        let a = !i + k in
        let b = a + half in
        let rb = Array.unsafe_get re b and ib = Array.unsafe_get im b in
        let tr = (rb *. cr) -. (ib *. ci) and ti = (rb *. ci) +. (ib *. cr) in
        let ra = Array.unsafe_get re a and ia = Array.unsafe_get im a in
        Array.unsafe_set re b (ra -. tr);
        Array.unsafe_set im b (ia -. ti);
        Array.unsafe_set re a (ra +. tr);
        Array.unsafe_set im a (ia +. ti)
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward_ip plan ~re ~im =
  check_plan plan re im;
  transform_ip plan ~conjugate:false re im

let inverse_ip plan ~re ~im =
  check_plan plan re im;
  transform_ip plan ~conjugate:true re im;
  let n = plan.size in
  let inv = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    Array.unsafe_set re i (Array.unsafe_get re i *. inv);
    Array.unsafe_set im i (Array.unsafe_get im i *. inv)
  done

(* ------------------------------------------------------------------ *)
(* Unplanned API.

   Sizes are powers of two, so at most ~60 distinct plans can ever
   exist; memoizing them makes the plain [forward]/[inverse] calls all
   over the statistics and trace generators reuse the tables too. *)

let plan_cache : (int, plan) Hashtbl.t = Hashtbl.create 16

(* Cache traffic is worth watching: a workload that misses here on a
   hot path is rebuilding twiddle tables instead of transforming. *)
let m_plan_hits = Lrd_obs.Obs.Counter.make "fft/plan_cache_hits"
let m_plan_misses = Lrd_obs.Obs.Counter.make "fft/plan_cache_misses"

let cached_plan n =
  match Hashtbl.find_opt plan_cache n with
  | Some p ->
      Lrd_obs.Obs.Counter.incr m_plan_hits;
      p
  | None ->
      Lrd_obs.Obs.Counter.incr m_plan_misses;
      let p = make_plan n in
      Hashtbl.add plan_cache n p;
      p

let check re im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft: re and im must have the same length";
  if not (is_power_of_two n) then
    invalid_arg "Fft: length must be a power of two"

let forward ~re ~im =
  check re im;
  transform_ip (cached_plan (Array.length re)) ~conjugate:false re im

let inverse ~re ~im =
  check re im;
  inverse_ip (cached_plan (Array.length re)) ~re ~im

let dft_naive ~re ~im =
  let n = Array.length re in
  if Array.length im <> n then
    invalid_arg "Fft.dft_naive: re and im must have the same length";
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let ang =
        -2.0 *. Float.pi *. float_of_int k *. float_of_int j
        /. float_of_int n
      in
      let c = cos ang and s = sin ang in
      sr := !sr +. (re.(j) *. c) -. (im.(j) *. s);
      si := !si +. (re.(j) *. s) +. (im.(j) *. c)
    done;
    out_re.(k) <- !sr;
    out_im.(k) <- !si
  done;
  (out_re, out_im)
