(** Per-domain workspace arenas.

    Plans and workspaces (FFT plans with scratch buffers, generator
    eigenvalue tables, estimator scratch) are mutable and must not be
    shared across domains, yet rebuilding them per call defeats their
    purpose.  An arena memoizes workspaces *per domain*: each domain
    that calls {!get} lazily grows its own private table (backed by
    [Domain.DLS]), so the hot path takes no lock and two pool tasks
    running on different domains can never alias one another's scratch.

    Composition with {!Pool}: worker domains live for the whole pool
    lifetime, so a workspace built by one task is reused by every later
    task of the same shape on that domain.  Because a workspace is only
    ever an accelerator (plans and scratch change *where* a value is
    computed, never the value), per-domain caching preserves the pool's
    determinism contract: results are bit-identical whatever domain ran
    the cell, or whether the arena was warm or cold. *)

type ('k, 'v) t
(** An arena producing a ['v] workspace per distinct ['k] key, per
    domain.  Keys are compared with structural equality/hash
    ([Hashtbl]). *)

val create : ('k -> 'v) -> ('k, 'v) t
(** [create build] is an arena whose per-domain entries are made on
    first use by [build key].  [build] runs on the requesting domain. *)

val get : ('k, 'v) t -> 'k -> 'v
(** [get arena key] is the calling domain's workspace for [key],
    building it on first use.  Never blocks; never shares a value
    across domains.  The returned workspace may hold mutable scratch:
    callers must not retain it across a point where other code on the
    same domain could call [get] with the same key and mutate it
    (i.e. treat it as valid for the current computation only). *)

val size : ('k, 'v) t -> int
(** Number of entries in the calling domain's table (for tests). *)
