(** A fixed pool of worker domains with a work-stealing scheduler for
    embarrassingly parallel index-tagged task sets.

    The experiment layer evaluates grids of independent solver / simulator
    cells; this pool spreads those cells across [Domain.recommended_domain_count
    () - 1] worker domains (plus the calling domain, which participates) while
    keeping the results deterministic: every task writes into a pre-sized
    result slot identified by its index, so the output never depends on the
    scheduling order.  Only the OCaml standard library is used ([Domain],
    [Mutex], [Condition], [Atomic]) — no domainslib dependency.

    Scheduling: the task indices are split into contiguous per-participant
    chunks, each held in a double-ended queue.  A participant pops from the
    tail of its own deque (preserving chunk locality) and, when empty, steals
    from the head of the other deques, so an unbalanced grid (e.g. deep-buffer
    solver cells next to trivial ones) still keeps every domain busy.

    Determinism contract: tasks must not share mutable state except through
    domain-safe structures, and any randomness must be derived from the task
    index (see [Lrd_rng.Rng.split_indexed]), never from a generator shared
    across tasks.  Under that contract, [map pool f xs] is bit-identical to
    [Array.map f xs] for any pool size.

    A pool whose tasks raise re-raises the first captured exception (with its
    backtrace) in the caller once the task set has drained; remaining tasks
    are skipped.  The pool survives the exception and can be reused. *)

type t

val create : ?workers:int -> unit -> t
(** Spawns [workers] worker domains (default
    [Domain.recommended_domain_count () - 1], at least 0).  With 0 workers the
    pool is still valid: every task runs in the calling domain, in index
    order.  @raise Invalid_argument if [workers < 0]. *)

val parallelism : t -> int
(** Number of participating domains: workers plus the calling domain. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] evaluates [f xs.(i)] for every [i] across the pool and
    returns the results in index order.  Nested use (calling [map] from
    inside a task of the same pool) raises [Invalid_argument]. *)

val map2_grid :
  t -> xs:'a array -> ys:'b array -> f:('a -> 'b -> 'c) -> 'c array array
(** [map2_grid pool ~xs ~ys ~f] returns [cells] with
    [cells.(iy).(ix) = f xs.(ix) ys.(iy)], evaluating the row-major flattened
    grid across the pool.  Matches the orientation of
    [Lrd_experiments.Sweep.surface]. *)

val iter : t -> (int -> unit) -> int -> unit
(** [iter pool task n] runs [task i] for [i = 0 .. n - 1] across the pool.
    The primitive behind [map] / [map2_grid], exposed for callers that write
    into their own pre-sized buffers. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins their domains.  Idempotent.  The
    pool must be idle (no [map] in flight). *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
