(* Work-stealing domain pool.  See the .mli for the scheduling and
   determinism contract.

   Synchronization structure: one mutex guards the pool's job slot and
   epoch counter; workers sleep on [work] until the epoch advances, the
   caller sleeps on [finished] until the job's pending-task count drains
   to zero.  Task completion is counted with an [Atomic] so participants
   never take the pool mutex on the fast path — only the decrement that
   reaches zero takes it, to wake the caller without a lost-wakeup race. *)

(* ------------------------------------------------------------------ *)
(* Per-participant deque of task indices.

   Contiguous index blocks are loaded once at job start; the owner pops
   from the tail (so it walks its block in order), thieves take from the
   head (so they grab the work farthest from the owner's cursor).  A
   plain mutex per deque is enough here: tasks are solver/simulator
   cells costing milliseconds, so queue operations are nowhere near the
   contention regime that would justify a lock-free Chase-Lev deque. *)

module Deque = struct
  type t = {
    lock : Mutex.t;
    items : int array;
    mutable head : int;  (* next index a thief takes *)
    mutable tail : int;  (* one past the next index the owner takes *)
  }

  let of_block ~lo ~hi =
    {
      lock = Mutex.create ();
      items = Array.init (hi - lo) (fun i -> lo + i);
      head = 0;
      tail = hi - lo;
    }

  let pop t =
    Mutex.lock t.lock;
    let r =
      if t.tail > t.head then begin
        t.tail <- t.tail - 1;
        Some t.items.(t.tail)
      end
      else None
    in
    Mutex.unlock t.lock;
    r

  let steal t =
    Mutex.lock t.lock;
    let r =
      if t.tail > t.head then begin
        let i = t.items.(t.head) in
        t.head <- t.head + 1;
        Some i
      end
      else None
    in
    Mutex.unlock t.lock;
    r
end

module Obs = Lrd_obs.Obs

(* Scheduler telemetry: counters are per-domain cells, so the worker
   hot path records lock-free; everything is a no-op (one branch, no
   allocation) while Obs is disabled.  "Stolen" counts land on the
   thief's domain; "run" counts on whichever domain executed, so
   run-per-domain is the load-balance picture and stolen-per-domain the
   imbalance repair traffic. *)
let m_jobs = Obs.Counter.make "pool/jobs"
let m_tasks_run = Obs.Counter.make "pool/tasks_run"
let m_tasks_stolen = Obs.Counter.make "pool/tasks_stolen"
let m_task_run = Obs.Span.make "pool/task_run_seconds"
let m_queue_wait = Obs.Histogram.make "pool/queue_wait_seconds"
let m_idle = Obs.Span.make "pool/idle_seconds"

type job = {
  run_task : int -> unit;
  deques : Deque.t array;  (* one per participant *)
  pending : int Atomic.t;  (* tasks not yet completed *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  submitted : float;  (* Obs.Span.start at job creation; neg_infinity
                         when telemetry was off *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* workers: a new epoch (job or shutdown) *)
  finished : Condition.t;  (* caller: pending reached zero *)
  mutable epoch : int;
  mutable job : job option;
  mutable stopping : bool;
  mutable joined : bool;
  mutable workers : unit Domain.t array;
}

let parallelism t = Array.length t.workers + 1

(* Execute one task, routing any exception into the job's failure slot;
   once a failure is recorded, later tasks are skipped (but still
   counted) so the caller unblocks quickly.  Returns true iff this call
   completed the job's last task. *)
let execute job i =
  (if Atomic.get job.failure = None then begin
     let t0 = Obs.Span.start () in
     if t0 > neg_infinity && job.submitted > neg_infinity then
       Obs.Histogram.observe m_queue_wait (t0 -. job.submitted);
     Obs.Counter.incr m_tasks_run;
     if Obs.Trace.enabled () then Obs.Trace.begin_ ~arg:i "pool/task";
     (try job.run_task i
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set job.failure None (Some (e, bt))));
     if Obs.Trace.enabled () then Obs.Trace.end_ ~arg:i "pool/task";
     Obs.Span.stop m_task_run t0
   end);
  Atomic.fetch_and_add job.pending (-1) = 1

let drain pool job ~me =
  let parts = Array.length job.deques in
  let finished_now = ref false in
  (* Own block first, then round-robin stealing sweeps. *)
  let rec own () =
    match Deque.pop job.deques.(me) with
    | Some i ->
        if execute job i then finished_now := true;
        own ()
    | None -> steal_sweep ()
  and steal_sweep () =
    let progressed = ref false in
    for k = 1 to parts - 1 do
      let victim = (me + k) mod parts in
      match Deque.steal job.deques.(victim) with
      | Some i ->
          progressed := true;
          Obs.Counter.incr m_tasks_stolen;
          if Obs.Trace.enabled () then Obs.Trace.instant ~arg:i "pool/steal";
          if execute job i then finished_now := true
      | None -> ()
    done;
    if !progressed then own ()
  in
  own ();
  (* Whoever completed the last task wakes the caller; the broadcast is
     taken under the pool lock so the caller cannot miss it between its
     predicate check and its wait. *)
  if !finished_now then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.finished;
    Mutex.unlock pool.lock
  end

let rec worker_loop pool ~me ~last_epoch =
  Mutex.lock pool.lock;
  (* Idle accounting covers exactly the epochs-behind wait: per-domain
     idle_seconds plus a pool/idle trace slice, so Report can split each
     domain's timeline into busy vs parked-between-jobs time.  Recording
     under the pool lock is fine — the instruments are per-domain cells
     and never take a lock themselves. *)
  if pool.epoch = last_epoch && not pool.stopping then begin
    let t0 = Obs.Span.start () in
    if Obs.Trace.enabled () then Obs.Trace.begin_ "pool/idle";
    while pool.epoch = last_epoch && not pool.stopping do
      Condition.wait pool.work pool.lock
    done;
    if Obs.Trace.enabled () then Obs.Trace.end_ "pool/idle";
    Obs.Span.stop m_idle t0
  end;
  let epoch = pool.epoch and job = pool.job and stopping = pool.stopping in
  Mutex.unlock pool.lock;
  if not stopping then begin
    (match job with Some j -> drain pool j ~me | None -> ());
    worker_loop pool ~me ~last_epoch:epoch
  end

let create ?workers () =
  let workers =
    match workers with
    | Some w ->
        if w < 0 then invalid_arg "Pool.create: workers must be nonnegative";
        w
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      stopping = false;
      joined = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init workers (fun me ->
        Domain.spawn (fun () -> worker_loop pool ~me ~last_epoch:0));
  pool

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  let join_now = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join_now then Array.iter Domain.join t.workers

let with_pool ?workers f =
  let pool = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let iter t run_task n =
  if n < 0 then invalid_arg "Pool.iter: negative task count";
  if n > 0 then begin
    let parts = parallelism t in
    let deques =
      Array.init parts (fun p ->
          Deque.of_block ~lo:(p * n / parts) ~hi:((p + 1) * n / parts))
    in
    Obs.Counter.incr m_jobs;
    if Obs.Trace.enabled () then Obs.Trace.instant ~arg:n "pool/job";
    let job =
      {
        run_task;
        deques;
        pending = Atomic.make n;
        failure = Atomic.make None;
        submitted = Obs.Span.start ();
      }
    in
    Mutex.lock t.lock;
    if t.job <> None then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.iter: pool already running a task set (nested map?)"
    end;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.iter: pool has been shut down"
    end;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The caller is the last participant. *)
    drain t job ~me:(parts - 1);
    Mutex.lock t.lock;
    while Atomic.get job.pending > 0 do
      Condition.wait t.finished t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match Atomic.get job.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter t (fun i -> out.(i) <- Some (f xs.(i))) n;
    Array.map (function Some v -> v | None -> assert false) out
  end

let map2_grid t ~xs ~ys ~f =
  let nx = Array.length xs and ny = Array.length ys in
  let n = nx * ny in
  if n = 0 then Array.map (fun _ -> [||]) ys
  else begin
    let out = Array.make n None in
    iter t (fun k -> out.(k) <- Some (f xs.(k mod nx) ys.(k / nx))) n;
    Array.init ny (fun iy ->
        Array.init nx (fun ix ->
            match out.((iy * nx) + ix) with
            | Some v -> v
            | None -> assert false))
  end
