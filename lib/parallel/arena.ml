(* Per-domain memo tables via [Domain.DLS]: the DLS key yields this
   domain's private hashtable, so lookup and insertion need no
   synchronization at all.  Workspaces never migrate between domains. *)

type ('k, 'v) t = {
  tables : ('k, 'v) Hashtbl.t Domain.DLS.key;
  build : 'k -> 'v;
}

let create build =
  { tables = Domain.DLS.new_key (fun () -> Hashtbl.create 8); build }

let get t key =
  let table = Domain.DLS.get t.tables in
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = t.build key in
      Hashtbl.add table key v;
      v

let size t = Hashtbl.length (Domain.DLS.get t.tables)
