(* Per-domain memo tables via [Domain.DLS]: the DLS key yields this
   domain's private hashtable, so lookup and insertion need no
   synchronization at all.  Workspaces never migrate between domains. *)

type ('k, 'v) t = {
  tables : ('k, 'v) Hashtbl.t Domain.DLS.key;
  build : 'k -> 'v;
}

(* One counter across all arenas: what matters is how often any domain
   pays a workspace build instead of a memo hit, not which arena. *)
let m_builds = Lrd_obs.Obs.Counter.make "arena/workspace_builds"
let m_hits = Lrd_obs.Obs.Counter.make "arena/workspace_hits"

let create build =
  { tables = Domain.DLS.new_key (fun () -> Hashtbl.create 8); build }

let get t key =
  let table = Domain.DLS.get t.tables in
  match Hashtbl.find_opt table key with
  | Some v ->
      Lrd_obs.Obs.Counter.incr m_hits;
      v
  | None ->
      Lrd_obs.Obs.Counter.incr m_builds;
      (* A build instant (not a span): builds are rare and the point is
         seeing *where* in a sweep a domain paid one, next to the
         pool/task slice it happened in. *)
      if Lrd_obs.Obs.Trace.enabled () then
        Lrd_obs.Obs.Trace.instant "arena/workspace_build";
      let v = t.build key in
      Hashtbl.add table key v;
      v

let size t = Hashtbl.length (Domain.DLS.get t.tables)
