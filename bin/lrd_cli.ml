(* lrd: command-line front end.

   Subcommands:
     solve       loss rate of a finite-buffer queue fed by the cutoff
                 fluid model (marginal from a trace file or built-in)
     trace       generate a synthetic trace (video / ethernet / fgn / dar)
     hurst       estimate the Hurst parameter of a trace, four ways
     simulate    trace-driven fluid-queue simulation, optionally shuffled
     experiment  run paper figures / ablations by id *)

open Cmdliner

let read_trace path =
  try Ok (Lrd_trace.Trace_io.load ~path)
  with Failure msg | Sys_error msg -> Error msg

let builtin_marginal ctx = function
  | "mtv" -> Ok (Lrd_experiments.Data.mtv_marginal ctx)
  | "bellcore" -> Ok (Lrd_experiments.Data.bc_marginal ctx)
  | other ->
      Error
        (Printf.sprintf
           "unknown built-in marginal %S (expected mtv or bellcore)" other)

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let seed_arg =
  let doc = "Seed for all randomness (trace synthesis, shuffling)." in
  Arg.(value & opt int64 20260705L & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Use small synthetic traces (fast, less statistics)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let utilization_arg =
  let doc = "Server utilization (mean rate / service rate), in (0, 1)." in
  Arg.(value & opt float 0.8 & info [ "u"; "utilization" ] ~docv:"U" ~doc)

let buffer_arg =
  let doc = "Normalized buffer size in seconds (buffer = B * service rate)." in
  Arg.(value & opt float 1.0 & info [ "b"; "buffer" ] ~docv:"SECONDS" ~doc)

let trace_file_arg =
  let doc = "Input trace file (as written by $(b,lrd trace)); its 50-bin \
             histogram becomes the marginal and its mean rate-residence \
             epoch sets theta.  (Not to be confused with $(b,--trace), \
             which enables timeline tracing.)" in
  Arg.(value & opt (some string) None & info [ "trace-file" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing shared by the compute-heavy subcommands.

   [--metrics text|json] turns the Obs layer on for the whole run and
   prints one aggregated snapshot (solver convergence, pool scheduling,
   cache traffic) to stdout afterwards; [--metrics-out FILE] redirects
   the snapshot to a file and implies JSON unless a format was given. *)

let metrics_format_arg =
  let doc =
    "Enable telemetry and print a metrics snapshot after the run; $(docv) \
     is $(b,text) or $(b,json)."
  in
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics snapshot to $(docv) instead of stdout (implies \
     $(b,--metrics json) unless a format is given)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* [--trace FILE] / [--trace-out FILE] — one shared argument, both
   spellings accepted on every compute-heavy subcommand (input trace
   files are [--trace-file], so the spellings never collide) — turns
   timeline tracing on for the run and exports the merged journal as
   Chrome trace-event JSON.  Tracing and metrics are independent
   switches: when both are given, each output goes to its own
   destination (the trace never lands on stdout). *)
let trace_out_arg =
  let doc =
    "Enable timeline tracing for the run and write the merged event \
     journal to $(docv) as Chrome trace-event JSON (open it in Perfetto \
     or chrome://tracing).  $(b,--trace-out) is an accepted alias.  \
     Independent of $(b,--metrics): giving both writes both, each to \
     its own destination."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace"; "trace-out" ] ~docv:"FILE" ~doc)

(* [--metrics-interval SECS] — stream timestamped snapshot lines to a
   JSONL file while the run is in flight (one line per tick, plus one
   at start and one at exit), so long runs produce a time series
   instead of a single exit snapshot.  The ticker file sits next to
   [--metrics-out FILE] as FILE minus extension + ".ticker.jsonl", or
   defaults to lrd-metrics.ticker.jsonl. *)
let metrics_interval_arg =
  let doc =
    "Enable telemetry and append a timestamped metrics snapshot line \
     (JSONL) every $(docv) seconds to a ticker file (next to \
     $(b,--metrics-out), else $(b,lrd-metrics.ticker.jsonl)).  With \
     $(b,--shards) the driver also prints per-shard heartbeat lines at \
     the same period."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "metrics-interval" ] ~docv:"SECS" ~doc)

let ticker_path ~metrics_out =
  match metrics_out with
  | Some f -> Filename.remove_extension f ^ ".ticker.jsonl"
  | None -> "lrd-metrics.ticker.jsonl"

let with_telemetry ?metrics_interval ?trace_out format out f =
  let wanted = format <> None || out <> None in
  if wanted || metrics_interval <> None then Lrd_obs.Obs.set_enabled true;
  if trace_out <> None then Lrd_obs.Obs.Trace.set_enabled true;
  (match metrics_interval with
  | None -> ()
  | Some interval -> (
      match
        Lrd_obs.Export.start_ticker ~interval
          ~path:(ticker_path ~metrics_out:out)
      with
      | Ok () -> ()
      | Error e ->
          prerr_endline ("lrd: --metrics-interval: " ^ e);
          exit 2));
  let result =
    Fun.protect
      ~finally:(fun () ->
        if metrics_interval <> None then Lrd_obs.Export.stop_ticker ())
      f
  in
  if wanted then begin
    let snap = Lrd_obs.Obs.snapshot () in
    let rendered =
      match format with
      | Some `Text -> Format.asprintf "%a" Lrd_obs.Obs.pp_text snap
      | Some `Json | None -> Lrd_obs.Obs.to_json snap
    in
    match out with
    | None -> print_string rendered
    | Some file ->
        let oc = open_out file in
        output_string oc rendered;
        close_out oc
  end;
  (match trace_out with
  | None -> ()
  | Some file ->
      Lrd_obs.Obs.Trace.set_enabled false;
      let oc = open_out file in
      output_string oc (Lrd_obs.Obs.Trace.to_chrome_json ());
      close_out oc);
  result

(* ------------------------------------------------------------------ *)
(* solve *)

let solve_cmd =
  let hurst_arg =
    let doc = "Hurst parameter in (0.5, 1); alpha = 3 - 2H." in
    Arg.(value & opt float 0.83 & info [ "H"; "hurst" ] ~docv:"H" ~doc)
  in
  let cutoff_arg =
    let doc = "Cutoff lag T_c in seconds (correlation is zero beyond); \
               $(b,inf) for the untruncated self-similar model." in
    Arg.(value & opt float Float.infinity & info [ "cutoff" ] ~docv:"TC" ~doc)
  in
  let marginal_arg =
    let doc = "Built-in marginal: mtv or bellcore (synthetic trace \
               histograms).  Ignored when --trace-file is given." in
    Arg.(value & opt string "mtv" & info [ "marginal" ] ~docv:"NAME" ~doc)
  in
  let epoch_arg =
    let doc = "Mean epoch duration in seconds used to match theta (eq. 25) \
               when no trace is given; defaults to the built-in trace's \
               measured value." in
    Arg.(value & opt (some float) None & info [ "epoch" ] ~docv:"SECONDS" ~doc)
  in
  let run quick seed utilization buffer hurst cutoff marginal_name trace epoch
      metrics metrics_out trace_out =
    with_telemetry ?trace_out metrics metrics_out @@ fun () ->
    let ctx = Lrd_experiments.Data.create ~seed ~quick () in
    let model_result =
      match trace with
      | Some path ->
          Result.map
            (fun t -> Lrd_core.Model.fit_from_trace ~hurst ~cutoff t)
            (read_trace path)
      | None ->
          Result.map
            (fun marginal ->
              let mean_epoch =
                match epoch with
                | Some e -> e
                | None ->
                    if marginal_name = "bellcore" then
                      Lrd_experiments.Data.bc_mean_epoch ctx
                    else Lrd_experiments.Data.mtv_mean_epoch ctx
              in
              let theta =
                Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch
                  ~alpha:(Lrd_core.Model.alpha_of_hurst hurst)
                  ()
              in
              Lrd_core.Model.of_hurst ~marginal ~hurst ~theta ~cutoff)
            (builtin_marginal ctx marginal_name)
    in
    match model_result with
    | Error msg -> `Error (false, msg)
    | Ok model ->
        Format.printf "model: %a@." Lrd_core.Model.pp model;
        let c =
          Lrd_core.Model.service_rate_for_utilization model ~utilization
        in
        Format.printf "service rate: %.6g, buffer: %.6g (%g s)@." c
          (buffer *. c) buffer;
        let result =
          Lrd_core.Solver.solve_utilization model ~utilization
            ~buffer_seconds:buffer
        in
        Format.printf "%a@." Lrd_core.Solver.pp_result result;
        let horizon =
          Lrd_core.Horizon.estimate_for_model model ~buffer:(buffer *. c)
        in
        if Float.is_finite horizon && horizon > 0.0 then
          Format.printf "correlation horizon estimate (eq. 26): %.4g s@."
            horizon
        else
          Format.printf
            "correlation horizon estimate: unavailable (infinite epoch \
             variance at this cutoff)@.";
        `Ok ()
  in
  let doc = "solve the finite-buffer fluid queue for the loss rate" in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      ret
        (const run $ quick_arg $ seed_arg $ utilization_arg $ buffer_arg
       $ hurst_arg $ cutoff_arg $ marginal_arg $ trace_file_arg $ epoch_arg
       $ metrics_format_arg $ metrics_out_arg
       $ trace_out_arg))

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let kind_arg =
    let doc = "Kind: video (MTV-like, scene based), ethernet \
               (Bellcore-like on/off aggregate), fgn (video marginal via \
               fractional Gaussian noise), farima (FARIMA(0, 0.3, 0) \
               rates), mginf (M/G/inf session traffic), dar (DAR(1) with \
               the video marginal)." in
    Arg.(value & opt string "video" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let slots_arg =
    let doc = "Number of trace samples (0 = the paper-scale default)." in
    Arg.(value & opt int 0 & info [ "n"; "slots" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output file." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run seed kind slots out =
    let rng = Lrd_rng.Rng.create ~seed in
    let trace =
      match kind with
      | "video" ->
          if slots > 0 then Lrd_trace.Video.generate_short rng ~n:slots
          else Lrd_trace.Video.generate rng
      | "ethernet" ->
          if slots > 0 then Lrd_trace.Ethernet.generate_short rng ~n:slots
          else Lrd_trace.Ethernet.generate rng
      | "fgn" ->
          let params =
            if slots > 0 then { Lrd_trace.Video.mtv_like with frames = slots }
            else Lrd_trace.Video.mtv_like
          in
          Lrd_trace.Video.generate_fgn ~params rng
      | "farima" ->
          (* Zero-mean FARIMA shifted to a positive rate floor of 10. *)
          let n = if slots > 0 then slots else 65_536 in
          let xs = Lrd_trace.Farima.generate rng ~d:0.3 ~n in
          Lrd_trace.Trace.create
            ~rates:(Array.map (fun v -> Float.max 0.0 (10.0 +. v)) xs)
            ~slot:0.01
      | "mginf" ->
          Lrd_trace.Mginf.generate rng
            ~slots:(if slots > 0 then slots else 65_536)
            ~slot:0.01
      | "dar" ->
          let marginal =
            Lrd_trace.Histogram.marginal_of_trace ~bins:50
              (Lrd_trace.Video.generate_short rng ~n:16_384)
          in
          let dar = Lrd_baselines.Dar.create ~marginal ~rho:0.6 in
          Lrd_baselines.Dar.generate dar rng
            ~slots:(if slots > 0 then slots else 107_892)
            ~slot:(1.0 /. 30.0)
      | other -> failwith (Printf.sprintf "unknown trace kind %S" other)
    in
    Lrd_trace.Trace_io.save trace ~path:out;
    Format.printf
      "wrote %d samples (slot %.4g s, mean %.4g, std %.4g, peak %.4g) to %s@."
      (Lrd_trace.Trace.length trace)
      trace.Lrd_trace.Trace.slot
      (Lrd_trace.Trace.mean trace)
      (Lrd_trace.Trace.std trace)
      (Lrd_trace.Trace.peak trace)
      out
  in
  (* `lrd trace` is a group whose default term is the generator, so the
     historical flat spelling (lrd trace --kind video -o FILE) keeps
     working next to the analysis subcommands. *)
  let generate_term =
    Term.(const run $ seed_arg $ kind_arg $ slots_arg $ out_arg)
  in
  let report_cmd =
    let file_arg =
      let doc = "Chrome trace-event journal to analyze (a --trace output)." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
    in
    let json_arg =
      let doc =
        "Print the full report as deterministic JSON (schema \
         $(b,lrd-trace-report/1)) instead of the text summary — \
         byte-identical across reruns of the same journal."
      in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let top_arg =
      let doc = "Number of slowest cells to list." in
      Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
    in
    let compare_arg =
      let doc =
        "A/B mode: also load the baseline journal $(docv) and print \
         per-phase totals side by side with ratios."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "compare" ] ~docv:"BASELINE" ~doc)
    in
    let run file json top compare =
      match Lrd_obs.Report.of_file file with
      | Error e -> `Error (false, e)
      | Ok current -> (
          match compare with
          | Some base_file -> (
              match Lrd_obs.Report.of_file base_file with
              | Error e -> `Error (false, e)
              | Ok base ->
                  if json then
                    print_endline
                      (Lrd_obs.Json.to_string ~pretty:true
                         (Lrd_obs.Json.Obj
                            [
                              ("schema", Lrd_obs.Json.Str Lrd_obs.Report.schema);
                              ("base", Lrd_obs.Report.to_json ~top base);
                              ( "current",
                                Lrd_obs.Report.to_json ~top current );
                            ]))
                  else
                    print_string
                      (Lrd_obs.Report.render_compare ~base ~current);
                  `Ok ())
          | None ->
              if json then
                print_endline
                  (Lrd_obs.Json.to_string ~pretty:true
                     (Lrd_obs.Report.to_json ~top current))
              else print_string (Lrd_obs.Report.render ~top current);
              `Ok ())
    in
    let doc =
      "analyze a timeline trace: per-phase aggregates, per-domain \
       utilization, steal ratios, slowest cells and the sweep critical \
       path"
    in
    Cmd.v (Cmd.info "report" ~doc)
      Term.(ret (const run $ file_arg $ json_arg $ top_arg $ compare_arg))
  in
  let doc = "generate synthetic traffic traces and analyze run timelines" in
  Cmd.group ~default:generate_term (Cmd.info "trace" ~doc) [ report_cmd ]

(* ------------------------------------------------------------------ *)
(* hurst *)

let hurst_cmd =
  let file_arg =
    let doc = "Trace file to analyze." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run path =
    match read_trace path with
    | Error msg -> `Error (false, msg)
    | Ok trace ->
        let rates = trace.Lrd_trace.Trace.rates in
        let report name (fit : Lrd_stats.Hurst.fit) =
          Format.printf "%-24s H = %.3f (slope %.3f over %d points)@." name
            fit.Lrd_stats.Hurst.hurst fit.Lrd_stats.Hurst.slope
            (Array.length fit.Lrd_stats.Hurst.xs)
        in
        report "aggregated variance" (Lrd_stats.Hurst.aggregated_variance rates);
        report "rescaled range (R/S)" (Lrd_stats.Hurst.rescaled_range rates);
        report "GPH log-periodogram" (Lrd_stats.Hurst.gph rates);
        report "Abry-Veitch wavelet" (Lrd_stats.Hurst.abry_veitch rates);
        let whittle = Lrd_stats.Whittle.local_whittle rates in
        Format.printf "%-24s H = %.3f (d = %.3f over %d frequencies)@."
          "local Whittle" whittle.Lrd_stats.Whittle.hurst
          whittle.Lrd_stats.Whittle.memory
          whittle.Lrd_stats.Whittle.frequencies;
        Format.printf "mean rate-residence epoch (50 bins): %.4g s@."
          (Lrd_trace.Epochs.mean_epoch_duration ~bins:50 trace);
        Format.printf
          "@.logscale diagram (log2 energy per octave, 95%% bands):@.";
        Array.iter
          (fun p ->
            Format.printf "  octave %2d: %8.3f  [%7.3f, %7.3f]  (%d coeffs)@."
              p.Lrd_stats.Hurst.octave p.Lrd_stats.Hurst.log2_energy
              p.Lrd_stats.Hurst.ci_low p.Lrd_stats.Hurst.ci_high
              p.Lrd_stats.Hurst.coefficients)
          (Lrd_stats.Hurst.logscale_diagram rates);
        `Ok ()
  in
  let doc = "estimate the Hurst parameter of a trace, four ways" in
  Cmd.v (Cmd.info "hurst" ~doc) Term.(ret (const run $ file_arg))

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let file_arg =
    let doc = "Trace file to feed the queue." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let block_arg =
    let doc = "Externally shuffle with this block size (samples) first." in
    Arg.(value & opt (some int) None & info [ "block" ] ~docv:"SAMPLES" ~doc)
  in
  let run seed utilization buffer block path =
    match read_trace path with
    | Error msg -> `Error (false, msg)
    | Ok trace ->
        let trace =
          match block with
          | None -> trace
          | Some b ->
              Lrd_trace.Shuffle.external_shuffle
                (Lrd_rng.Rng.create ~seed)
                trace ~block:b
        in
        let c =
          Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
        in
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:(buffer *. c) ()
        in
        let stats = Lrd_fluidsim.Queue_sim.run_trace sim trace in
        Format.printf
          "loss rate %.6g (lost %.6g of %.6g work; achieved utilization \
           %.4f; max occupancy %.4g of %.4g)@."
          (Lrd_fluidsim.Queue_sim.loss_rate stats)
          stats.Lrd_fluidsim.Queue_sim.lost
          stats.Lrd_fluidsim.Queue_sim.arrived
          (Lrd_fluidsim.Queue_sim.utilization stats ~service_rate:c)
          stats.Lrd_fluidsim.Queue_sim.max_occupancy (buffer *. c);
        `Ok ()
  in
  let doc = "trace-driven finite-buffer fluid-queue simulation" in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ utilization_arg $ buffer_arg $ block_arg
       $ file_arg))

(* ------------------------------------------------------------------ *)
(* fit *)

let fit_cmd =
  let file_arg =
    let doc = "Trace file to fit." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let hurst_arg =
    let doc = "Hurst parameter (default: wavelet estimate from the trace)." in
    Arg.(value & opt (some float) None & info [ "H"; "hurst" ] ~docv:"H" ~doc)
  in
  let run utilization buffer hurst path metrics metrics_out trace_out =
    with_telemetry ?trace_out metrics metrics_out @@ fun () ->
    match read_trace path with
    | Error msg -> `Error (false, msg)
    | Ok trace ->
        let model, cutoff =
          Lrd_core.Fitting.for_buffer ?hurst trace ~utilization
            ~buffer_seconds:buffer
        in
        Format.printf
          "horizon-fitted model for B = %g s at utilization %g:@." buffer
          utilization;
        Format.printf "  %a@." Lrd_core.Model.pp model;
        Format.printf
          "  cutoff lag = correlation horizon = %.4g s (eq. 26, p = 0.01)@."
          cutoff;
        let result =
          Lrd_core.Solver.solve_utilization model ~utilization
            ~buffer_seconds:buffer
        in
        Format.printf "  predicted %a@." Lrd_core.Solver.pp_result result;
        (* Cross-check against the trace itself. *)
        let c =
          Lrd_trace.Trace.service_rate_for_utilization trace ~utilization
        in
        let sim =
          Lrd_fluidsim.Queue_sim.make ~service_rate:c ~buffer:(buffer *. c) ()
        in
        let stats = Lrd_fluidsim.Queue_sim.run_trace sim trace in
        Format.printf "  trace-driven simulation: %.4g@."
          (Lrd_fluidsim.Queue_sim.loss_rate stats);
        `Ok ()
  in
  let doc =
    "fit the most parsimonious adequate model for a target queue \
     (cutoff = its correlation horizon)"
  in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(
      ret
        (const run $ utilization_arg $ buffer_arg $ hurst_arg $ file_arg
       $ metrics_format_arg $ metrics_out_arg
       $ trace_out_arg))

(* ------------------------------------------------------------------ *)
(* ams *)

let ams_cmd =
  let sources_arg =
    let doc = "Number of on/off sources." in
    Arg.(value & opt int 6 & info [ "n"; "sources" ] ~docv:"N" ~doc)
  in
  let on_rate_arg =
    let doc = "Rate emitted while ON." in
    Arg.(value & opt float 1.0 & info [ "rate" ] ~docv:"R" ~doc)
  in
  let lambda_arg =
    let doc = "OFF -> ON transition rate." in
    Arg.(value & opt float 1.0 & info [ "lambda" ] ~docv:"L" ~doc)
  in
  let mu_arg =
    let doc = "ON -> OFF transition rate." in
    Arg.(value & opt float 2.0 & info [ "mu" ] ~docv:"M" ~doc)
  in
  let service_arg =
    let doc = "Service rate (must avoid the lattice j * rate)." in
    Arg.(value & opt float 2.7 & info [ "c"; "service" ] ~docv:"C" ~doc)
  in
  let levels_arg =
    let doc = "Buffer levels to evaluate." in
    Arg.(
      value
      & opt (list float) [ 0.5; 1.0; 2.0; 4.0 ]
      & info [ "levels" ] ~docv:"LEVELS" ~doc)
  in
  let run sources on_rate lambda mu service_rate levels =
    try
      let sys =
        Lrd_baselines.Ams.create ~sources ~on_rate ~lambda ~mu ~service_rate
      in
      Format.printf
        "mean rate %.4g, utilization %.4f; negative eigenvalues:"
        (Lrd_baselines.Ams.mean_rate sys)
        (Lrd_baselines.Ams.utilization sys);
      Array.iter
        (fun z -> Format.printf " %.5g" z)
        (Lrd_baselines.Ams.negative_eigenvalues sys);
      Format.printf "@.%10s %16s %16s@." "level" "P(Q > level)"
        "loss at B=level";
      List.iter
        (fun level ->
          Format.printf "%10g %16.6e %16.6e@." level
            (Lrd_baselines.Ams.overflow_probability sys ~level)
            (Lrd_baselines.Ams.finite_buffer_loss sys ~buffer:level))
        levels;
      `Ok ()
    with Invalid_argument msg | Failure msg -> `Error (false, msg)
  in
  let doc =
    "exact Anick-Mitra-Sondhi analysis of N exponential on/off sources"
  in
  Cmd.v (Cmd.info "ams" ~doc)
    Term.(
      ret
        (const run $ sources_arg $ on_rate_arg $ lambda_arg $ mu_arg
       $ service_arg $ levels_arg))

(* ------------------------------------------------------------------ *)
(* stationarity *)

let stationarity_cmd =
  let file_arg =
    let doc = "Trace file to diagnose." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run seed path =
    match read_trace path with
    | Error msg -> `Error (false, msg)
    | Ok trace ->
        let data = trace.Lrd_trace.Trace.rates in
        let rng = Lrd_rng.Rng.create ~seed in
        let cusum = Lrd_stats.Stationarity.cusum data in
        Format.printf
          "CUSUM statistic %.3f (short-memory 5%% critical value %.3f), \
           change point at sample %d@."
          cusum.Lrd_stats.Stationarity.statistic
          cusum.Lrd_stats.Stationarity.critical_5pct
          cusum.Lrd_stats.Stationarity.change_point;
        Format.printf "split-half mean shift: %.2f standard errors@."
          (Lrd_stats.Stationarity.split_half_mean_shift data);
        let wavelet = (Lrd_stats.Hurst.abry_veitch data).Lrd_stats.Hurst.hurst in
        let surrogate =
          Lrd_stats.Stationarity.phase_randomized_surrogate rng data
        in
        let surrogate_h =
          (Lrd_stats.Hurst.abry_veitch surrogate).Lrd_stats.Hurst.hurst
        in
        Format.printf
          "wavelet H: %.3f (trace) vs %.3f (phase-randomized surrogate)@."
          wavelet surrogate_h;
        Format.printf
          "(H surviving phase randomization favours genuine linear LRD; a \
           CUSUM far beyond the critical value with a collapsing surrogate \
           H favours level shifts - and under true LRD the CUSUM \
           normalization over-rejects, which is the ambiguity the paper \
           describes)@.";
        `Ok ()
  in
  let doc = "LRD-vs-level-shift stationarity diagnostics for a trace" in
  Cmd.v (Cmd.info "stationarity" ~doc)
    Term.(ret (const run $ seed_arg $ file_arg))

(* ------------------------------------------------------------------ *)
(* provision *)

let provision_cmd =
  let target_arg =
    let doc = "Target loss rate, in [1e-10, 1)." in
    Arg.(value & opt float 1e-6 & info [ "target" ] ~docv:"LOSS" ~doc)
  in
  let knob_arg =
    let doc = "Knob to invert: buffer, utilization, or streams." in
    Arg.(value & opt string "buffer" & info [ "knob" ] ~docv:"KNOB" ~doc)
  in
  let marginal_arg =
    let doc = "Built-in marginal: mtv or bellcore." in
    Arg.(value & opt string "mtv" & info [ "marginal" ] ~docv:"NAME" ~doc)
  in
  let hurst_arg =
    let doc = "Hurst parameter." in
    Arg.(value & opt float 0.83 & info [ "H"; "hurst" ] ~docv:"H" ~doc)
  in
  let cutoff_arg =
    let doc = "Cutoff lag in seconds (inf for self-similar)." in
    Arg.(value & opt float Float.infinity & info [ "cutoff" ] ~docv:"TC" ~doc)
  in
  let run quick seed utilization buffer knob marginal_name trace hurst cutoff
      target =
    let ctx = Lrd_experiments.Data.create ~seed ~quick () in
    let model_result =
      match trace with
      | Some path ->
          Result.map
            (fun t -> Lrd_core.Model.fit_from_trace ~hurst ~cutoff t)
            (read_trace path)
      | None ->
          Result.map
            (fun marginal ->
              let mean_epoch =
                if marginal_name = "bellcore" then
                  Lrd_experiments.Data.bc_mean_epoch ctx
                else Lrd_experiments.Data.mtv_mean_epoch ctx
              in
              let theta =
                Lrd_dist.Interarrival.theta_for_mean_epoch ~mean_epoch
                  ~alpha:(Lrd_core.Model.alpha_of_hurst hurst)
                  ()
              in
              Lrd_core.Model.of_hurst ~marginal ~hurst ~theta ~cutoff)
            (builtin_marginal ctx marginal_name)
    in
    match model_result with
    | Error msg -> `Error (false, msg)
    | Ok model -> (
        let describe label = function
          | Lrd_core.Provision.Achieved v ->
              Format.printf "%s: %.5g@." label v
          | Lrd_core.Provision.Unachievable_within v ->
              Format.printf "%s: not achievable within %.5g@." label v
        in
        try
          (match knob with
          | "buffer" ->
              describe "required buffer (seconds)"
                (Lrd_core.Provision.buffer_for_loss model ~utilization
                   ~target)
          | "utilization" ->
              describe "maximum utilization"
                (Lrd_core.Provision.utilization_for_loss model
                   ~buffer_seconds:buffer ~target)
          | "streams" ->
              describe "required multiplexed streams"
                (Lrd_core.Provision.streams_for_loss model ~utilization
                   ~buffer_seconds:buffer ~target)
          | other ->
              failwith
                (Printf.sprintf
                   "unknown knob %S (expected buffer, utilization, streams)"
                   other));
          `Ok ()
        with Failure msg | Invalid_argument msg -> `Error (false, msg))
  in
  let doc = "invert the solver: parameter needed to meet a loss target" in
  Cmd.v (Cmd.info "provision" ~doc)
    Term.(
      ret
        (const run $ quick_arg $ seed_arg $ utilization_arg $ buffer_arg
       $ knob_arg $ marginal_arg $ trace_file_arg $ hurst_arg $ cutoff_arg
       $ target_arg))

(* ------------------------------------------------------------------ *)
(* experiment — including the process-sharding modes.

   One figure grid can be split across worker processes:

     lrd experiment fig12 --shard 1/2 --out DIR   one worker's rows
     lrd experiment fig12 --shards 2  --out DIR   self-exec both, merge
     lrd experiment fig12 --merge DIR             merge existing shards

   Rows are the unit of determinism (warm-start chains never cross
   them), so the merged results are byte-identical to the whole run's.
   Exit codes follow `lrd metrics diff`: 2 on malformed or mismatched
   shard files, 1 when a worker still fails after its retries. *)

let superpose_name = function
  | Lrd_core.Superpose.Exact -> "exact"
  | Lrd_core.Superpose.Edgeworth -> "edgeworth"
  | Lrd_core.Superpose.Auto -> "auto"

(* The parameter digest shards are stamped with.  Computed from a
   throwaway sequential context: the digest excludes "jobs", and shard
   modes require the uniform gap policy, so (seed, quick, superpose)
   determine it fully. *)
let shard_digest ~quick ~seed ~superpose id =
  let ctx = Lrd_experiments.Data.create ~seed ~superpose ~quick () in
  Lrd_experiments.Shard.digest ~figure:id
    (Lrd_experiments.Data.manifest_fields ctx)

(* Worker: compute one shard's rows, then write the partial results,
   the cells payload, the metrics snapshot and — last, sealing the
   checkpoint — the shard manifest. *)
let run_shard_worker ~quick ~seed ~jobs ~superpose ~dir ~spec id =
  let module E = Lrd_experiments in
  E.Shard.ensure_dir dir;
  (* The shard metrics snapshot is part of the checkpoint (the merge
     sums the counters), so the worker records telemetry regardless of
     its own --metrics flags. *)
  Lrd_obs.Obs.set_enabled true;
  let sh = E.Shard.compute spec in
  let ctx = E.Data.create ~seed ~jobs ~superpose ~shard:sh ~quick () in
  Fun.protect
    ~finally:(fun () -> E.Data.teardown ctx)
    (fun () ->
      E.Registry.run ~only:[ id ]
        ~results:(E.Shard.results_path ~dir spec)
        ctx Format.std_formatter);
  let digest = E.Shard.digest ~figure:id (E.Data.manifest_fields ctx) in
  E.Shard.write_cells sh ~dir ~figure:id ~digest;
  let snapshot = Lrd_obs.Obs.to_json (Lrd_obs.Obs.snapshot ()) in
  let oc = open_out (E.Shard.metrics_path ~dir spec) in
  output_string oc snapshot;
  close_out oc;
  let metrics =
    match Lrd_obs.Json.parse snapshot with Ok v -> Some v | Error _ -> None
  in
  Lrd_obs.Manifest.write
    (E.Shard.manifest_path ~dir spec)
    (Lrd_obs.Manifest.make ~schema:Lrd_obs.Manifest.shard_schema
       ~figures:[ id ]
       ~parameters:(E.Data.manifest_fields ctx)
       ~extra:(E.Shard.shard_section sh ~figure:id ~digest)
       ?metrics ~tool:"lrd experiment --shard" ())

(* Merge: validate + load the shard set, replay the figure against the
   merged store (byte-identical output, no solver work), and sum the
   shard counters into merged.metrics.json.  Exit 2 on any malformed or
   mismatched input, like `lrd metrics diff`. *)
let run_shard_merge ~quick ~seed ~jobs ~superpose ~manifest ~digest ~dir id =
  let module E = Lrd_experiments in
  match E.Shard.load ~dir ~figure:id ~digest with
  | Error msg ->
      prerr_endline ("lrd experiment --merge: " ^ msg);
      exit 2
  | Ok (replay, per_shard) ->
      let ctx = E.Data.create ~seed ~jobs ~superpose ~shard:replay ~quick () in
      Fun.protect
        ~finally:(fun () -> E.Data.teardown ctx)
        (fun () ->
          E.Registry.run ~only:[ id ] ?manifest
            ~results:(E.Shard.merged_results_path ~dir)
            ctx Format.std_formatter);
      (match E.Shard.write_merged_metrics ~dir per_shard with
      | Ok () -> ()
      | Error msg ->
          prerr_endline ("lrd experiment --merge: " ^ msg);
          exit 2);
      per_shard

(* Driver: self-exec one worker per shard, wait (with bounded
   restart-on-failure), then merge.  --resume skips shards whose
   checkpoint manifest still matches.  Exit 1 when a shard fails for
   good. *)
let run_shard_driver ?heartbeat ~quick ~seed ~jobs ~superpose ~manifest ~dir
    ~count ~resume ~retries id =
  let module E = Lrd_experiments in
  let digest = shard_digest ~quick ~seed ~superpose id in
  let worker_argv spec =
    [
      "experiment";
      id;
      "--shard";
      E.Shard.spec_string spec;
      "--out";
      dir;
      "--seed";
      Int64.to_string seed;
      "--jobs";
      string_of_int jobs;
      "--superpose";
      superpose_name superpose;
    ]
    @ (if quick then [ "--quick" ] else [])
  in
  match
    E.Shard.drive ?heartbeat ~dir ~figure:id ~digest ~count ~resume ~retries
      ~worker_argv ()
  with
  | Error msg ->
      prerr_endline ("lrd experiment --shards: " ^ msg);
      exit 1
  | Ok skipped ->
      let per_shard =
        run_shard_merge ~quick ~seed ~jobs ~superpose ~manifest ~digest ~dir
          id
      in
      E.Shard.record_counters ~per_shard ~skipped

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (default: all).  Use $(b,list) to \
               print the available ids." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc = "Total parallelism for the sweep grids: 1 runs \
               sequentially (the default), 0 auto-sizes to the machine, \
               N >= 2 spreads grid cells over N domains.  Results are \
               identical for every value." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let gap_policy_arg =
    let doc =
      "Error-budget policy for the scheduled figure sweeps: \
       $(b,uniform) converges every grid cell to the solver's own 20% \
       gap target; $(b,contrast:D) stops refining a cell once its \
       certified upper bound sits D decades below the largest lower \
       bound on the surface, where it can no longer change the plotted \
       contrast.  Bare $(b,contrast) derives D from the figure's own \
       loss axis: one decade below the smallest plotted value (floored \
       at 2 decades).  Either way every reported bound stays certified."
    in
    Arg.(
      value
      & opt string "uniform"
      & info [ "gap-policy" ] ~docv:"POLICY" ~doc)
  in
  let iteration_budget_arg =
    let doc =
      "Hard cap on the total chain iterations each figure surface may \
       spend; when it runs out, remaining cells report their latest \
       certified (possibly loose) bounds.  Composes with \
       $(b,--gap-policy)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "iteration-budget" ] ~docv:"N" ~doc)
  in
  let manifest_arg =
    let doc =
      "Write a run provenance manifest to $(docv): the figure ids run, \
       the full parameter set (seed, jobs, solver parameters, sweep \
       grids), git revision + dirty flag, OCaml version, wall time, and \
       the final metrics snapshot when $(b,--metrics) is on.  Two runs \
       with the same seed and flags produce identical manifests modulo \
       the generated_at_unix / wall_seconds lines."
    in
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let parse_gap_policy s iteration_budget =
    let contrast c =
      Ok { Lrd_experiments.Sweep.contrast = Some c; iteration_budget }
    in
    match String.lowercase_ascii s with
    | "uniform" ->
        Ok { Lrd_experiments.Sweep.contrast = None; iteration_budget }
    | "contrast" -> contrast Lrd_experiments.Sweep.From_axis
    | other -> (
        match String.index_opt other ':' with
        | Some i when String.sub other 0 i = "contrast" -> (
            let rest = String.sub other (i + 1) (String.length other - i - 1) in
            match float_of_string_opt rest with
            | Some d when d > 0.0 && Float.is_finite d ->
                contrast (Lrd_experiments.Sweep.Decades d)
            | _ ->
                Error
                  (Printf.sprintf
                     "--gap-policy contrast:D needs a positive finite D, got \
                      %S" rest))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown --gap-policy %S (expected uniform, contrast or \
                  contrast:D)" s))
  in
  let shard_arg =
    let doc =
      "Worker mode: compute only shard $(docv) (e.g. $(b,1/2)) of one \
       shardable figure's grid.  Rows are partitioned round-robin, so \
       every warm-start chain stays inside one shard and each owned \
       cell is bitwise identical to the whole run's.  Writes the \
       partial results, a cells payload, a metrics snapshot and a \
       checkpoint manifest into $(b,--out).  Requires the uniform gap \
       policy."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"K/N" ~doc)
  in
  let shards_arg =
    let doc =
      "Driver mode: self-exec $(docv) worker processes (one per shard) \
       over one shardable figure, wait for all (restarting failures up \
       to $(b,--retries) times), then merge — results byte-identical \
       to the unsharded run.  Exit 1 when a shard still fails after \
       its retries."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let merge_arg =
    let doc =
      "Merge mode: load the shard files in $(docv), refuse mismatched \
       schema / figure / parameter digests (exit 2, the $(b,lrd \
       metrics diff) discipline), replay the figure against the merged \
       store and write $(b,merged.results.txt) plus \
       $(b,merged.metrics.json) (counter sums across shards)."
    in
    Arg.(value & opt (some string) None & info [ "merge" ] ~docv:"DIR" ~doc)
  in
  let out_arg =
    let doc =
      "Directory for shard outputs (worker and driver modes); created \
       if missing."
    in
    Arg.(value & opt string "lrd-shards" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc =
      "With $(b,--shards): skip spawning shards whose checkpoint (cells \
       payload + manifest with matching schema, figure, spec and \
       parameter digest) is already valid in $(b,--out) — only the \
       missing cells are recomputed.  Skipped work lands in the \
       $(b,shard/cells_skipped) counter."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let retries_arg =
    let doc =
      "With $(b,--shards): restart a failed worker up to $(docv) times \
       before giving up."
    in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let results_out_arg =
    let doc =
      "Tee every figure's pure output (without the per-figure wall-time \
       lines) to $(docv) — byte-comparable across runs; what the \
       shard-equivalence gate compares $(b,merged.results.txt) \
       against."
    in
    Arg.(
      value & opt (some string) None & info [ "results-out" ] ~docv:"FILE" ~doc)
  in
  let superpose_arg =
    let doc =
      "Aggregate-marginal construction for the superposition \
       experiments: $(b,exact) forces the repeated-squaring \
       transform-domain convolution, $(b,edgeworth) forces the \
       cumulant-sum closed form, and $(b,auto) (the default) picks \
       exact whenever the transform grid fits the cost model's cap."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("exact", Lrd_core.Superpose.Exact);
               ("edgeworth", Lrd_core.Superpose.Edgeworth);
               ("auto", Lrd_core.Superpose.Auto);
             ])
          Lrd_core.Superpose.Auto
      & info [ "superpose" ] ~docv:"METHOD" ~doc)
  in
  let run quick seed jobs gap_policy iteration_budget superpose metrics
      metrics_out metrics_interval trace_out manifest shard shards merge out
      resume retries results_out ids =
    with_telemetry ?metrics_interval ?trace_out metrics metrics_out
    @@ fun () ->
    match parse_gap_policy gap_policy iteration_budget with
    | Error msg -> `Error (false, msg)
    | Ok policy -> (
        let shard_modes =
          (if shard <> None then 1 else 0)
          + (if shards <> None then 1 else 0)
          + if merge <> None then 1 else 0
        in
        if shard_modes > 1 then
          `Error (false, "--shard, --shards and --merge are mutually exclusive")
        else if shard_modes = 1 then
          (* Process-sharding modes: exactly one shardable figure under
             the uniform policy. *)
          match ids with
          | [ id ] -> (
              match Lrd_experiments.Registry.find id with
              | None ->
                  `Error (false, Printf.sprintf "unknown experiment id %S" id)
              | Some e when not e.Lrd_experiments.Registry.shardable ->
                  `Error
                    ( false,
                      Printf.sprintf
                        "%s is not shardable (only the scheduled-sweep \
                         figures are: fig4, fig5, fig10, fig11, fig12, \
                         fig13, fig11_scale)"
                        id )
              | Some _ when policy <> Lrd_experiments.Sweep.uniform_policy ->
                  `Error
                    ( false,
                      "sharding requires --gap-policy uniform without \
                       --iteration-budget: the contrast and budget rules \
                       couple cells across the whole surface, which a \
                       partition cannot reproduce" )
              | Some _ -> (
                  match (shard, shards, merge) with
                  | Some spec_s, None, None -> (
                      match Lrd_experiments.Shard.parse_spec spec_s with
                      | Error msg -> `Error (false, "--shard: " ^ msg)
                      | Ok spec ->
                          run_shard_worker ~quick ~seed ~jobs ~superpose
                            ~dir:out ~spec id;
                          `Ok ())
                  | None, Some count, None ->
                      if count < 1 then
                        `Error (false, "--shards needs a positive count")
                      else begin
                        run_shard_driver ?heartbeat:metrics_interval ~quick
                          ~seed ~jobs ~superpose ~manifest ~dir:out ~count
                          ~resume ~retries id;
                        `Ok ()
                      end
                  | None, None, Some dir ->
                      let digest = shard_digest ~quick ~seed ~superpose id in
                      let _ : (Lrd_experiments.Shard.spec * int) list =
                        run_shard_merge ~quick ~seed ~jobs ~superpose
                          ~manifest ~digest ~dir id
                      in
                      `Ok ()
                  | _ -> assert false))
          | _ ->
              `Error
                ( false,
                  "--shard/--shards/--merge run exactly one figure id \
                   (e.g. lrd experiment fig12 --shards 2)" )
        else
          match
            try
              Ok
                (Lrd_experiments.Data.create ~seed ~jobs ~gap_policy:policy
                   ~superpose ~quick ())
            with Invalid_argument msg -> Error msg
          with
          | Error msg -> `Error (false, msg)
          | Ok ctx ->
              Fun.protect
                ~finally:(fun () -> Lrd_experiments.Data.teardown ctx)
                (fun () ->
                  match ids with
                  | [ "list" ] ->
                      List.iter
                        (fun e ->
                          Format.printf "%-18s %s@."
                            e.Lrd_experiments.Registry.id
                            e.Lrd_experiments.Registry.title)
                        Lrd_experiments.Registry.all;
                      `Ok ()
                  | [] ->
                      Lrd_experiments.Registry.run ?manifest
                        ?results:results_out ctx Format.std_formatter;
                      `Ok ()
                  | ids -> (
                      try
                        Lrd_experiments.Registry.run ~only:ids ?manifest
                          ?results:results_out ctx Format.std_formatter;
                        `Ok ()
                      with Invalid_argument msg -> `Error (false, msg))))
  in
  let doc = "run the paper's figures and the ablations" in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      ret
        (const run $ quick_arg $ seed_arg $ jobs_arg $ gap_policy_arg
       $ iteration_budget_arg $ superpose_arg $ metrics_format_arg
       $ metrics_out_arg $ metrics_interval_arg $ trace_out_arg $ manifest_arg
       $ shard_arg $ shards_arg $ merge_arg $ out_arg $ resume_arg
       $ retries_arg $ results_out_arg $ ids_arg))

(* ------------------------------------------------------------------ *)
(* metrics diff *)

let metrics_cmd =
  let diff_cmd =
    let base_arg =
      let doc =
        "Baseline snapshot: a $(b,--metrics json) file, a bench \
         $(b,--json) baseline (BENCH_micro.json), or a run manifest."
      in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE" ~doc)
    in
    let current_arg =
      let doc = "Current snapshot to compare, in any of the same formats." in
      Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT" ~doc)
    in
    let threshold_arg =
      let doc =
        "Regression ratio: a series regresses when current > $(docv) x \
         base (decreases never regress)."
      in
      Arg.(value & opt float 2.0 & info [ "threshold" ] ~docv:"RATIO" ~doc)
    in
    let min_abs_arg =
      let doc =
        "Additionally require the absolute increase to reach $(docv) \
         before calling a regression (filters noise on tiny series)."
      in
      Arg.(value & opt float 0.0 & info [ "min-abs" ] ~docv:"DELTA" ~doc)
    in
    let filter_arg =
      let doc =
        "Compare only series whose name contains $(docv) (e.g. \
         $(b,kernel/) to gate just the CPU micro-kernels)."
      in
      Arg.(
        value & opt (some string) None & info [ "filter" ] ~docv:"SUBSTR" ~doc)
    in
    let exact_arg =
      let doc =
        "Equivalence gating: any numeric difference on a series present \
         in both snapshots — either direction, any size — is a \
         regression (exit 3).  Names on one side only still warn.  \
         Used with $(b,--filter solver/) to assert a merged sharded \
         run reproduced the whole run's deterministic counters."
      in
      Arg.(value & flag & info [ "exact" ] ~doc)
    in
    let run base current threshold min_abs filter exact =
      (* Exit codes mirror the bench harness: 0 clean, 3 regression,
         2 unreadable or unrecognized input.  Names present on only one
         side warn without failing, so an --only-filtered run can be
         diffed against a full baseline. *)
      exit
        (Lrd_obs.Diff.run ~threshold ~min_abs ?filter ~exact ~base ~current ())
    in
    let doc =
      "compare two metrics snapshots (exit 0 clean, 3 on regression, 2 \
       on unreadable input)"
    in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(
        const run $ base_arg $ current_arg $ threshold_arg $ min_abs_arg
        $ filter_arg $ exact_arg)
  in
  let doc = "inspect and compare metrics snapshots" in
  Cmd.group (Cmd.info "metrics" ~doc) [ diff_cmd ]

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "cutoff-correlated fluid traffic model and finite-buffer loss solver \
     (Grossglauser & Bolot, SIGCOMM '96)"
  in
  let info = Cmd.info "lrd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            trace_cmd;
            hurst_cmd;
            simulate_cmd;
            provision_cmd;
            fit_cmd;
            ams_cmd;
            stationarity_cmd;
            experiment_cmd;
            metrics_cmd;
          ]))
